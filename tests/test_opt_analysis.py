"""Tests for the offline Belady-OPT analysis."""

import pytest

from repro.cache.opt import AccessRecorder, OPTAnalysis


def test_opt_rejects_bad_geometry():
    with pytest.raises(ValueError):
        OPTAnalysis(0, 4)


def test_opt_all_unique_all_miss():
    opt = OPTAnalysis(1, 2)
    opt.run([(i, "non_replay") for i in range(10)])
    assert opt.misses["non_replay"] == 10
    assert opt.hits["non_replay"] == 0


def test_opt_repeated_line_hits():
    opt = OPTAnalysis(1, 2)
    opt.run([(1, "x"), (1, "x"), (1, "x")])
    assert opt.misses["x"] == 1
    assert opt.hits["x"] == 2


def test_opt_beats_lru_on_cyclic_pattern():
    """Cyclic access to ways+1 lines: LRU gets 0 hits, OPT keeps some."""
    lines = [0, 1, 2] * 10  # 3 lines, 2 ways
    opt = OPTAnalysis(1, 2)
    opt.run([(l, "x") for l in lines])
    assert opt.hit_rate("x") > 0.3


def test_opt_is_belady_on_textbook_example():
    # Classic: 2-way, stream a b c a b -> OPT keeps a (reused sooner).
    opt = OPTAnalysis(1, 2)
    opt.run([(0, "x"), (1, "x"), (2, "x"), (0, "x"), (1, "x")])
    # a,b miss; c misses and evicts whichever is used later (b);
    # a hits; b misses.  4 misses, 1 hit is optimal here? Check MIN:
    # evict the farthest next use: at c's fill, a used at idx 3,
    # b at idx 4 -> evict b.  Then a hits, b misses: 4 miss / 1 hit.
    assert opt.hits["x"] == 1
    assert opt.misses["x"] == 4


def test_opt_set_awareness():
    opt = OPTAnalysis(2, 1)
    # Lines 0 and 2 map to set 0, line 1 to set 1 (line % sets).
    opt.run([(0, "x"), (1, "x"), (0, "x"), (1, "x")])
    assert opt.hits["x"] == 2


def test_opt_per_category_accounting():
    opt = OPTAnalysis(1, 4)
    opt.run([(1, "translation"), (2, "replay"), (1, "translation")])
    assert opt.hits["translation"] == 1
    assert opt.misses["replay"] == 1
    assert opt.mpki("replay", 1000) == 1.0


def test_recorder_captures_stream_and_analyzes():
    from repro.cache.cache import Cache
    from repro.memsys.request import MemoryRequest
    from repro.params import CacheConfig

    class Null:
        def access(self, req):
            req.served_by = "DRAM"
            return req.cycle + 100

    cache = Cache(CacheConfig("T", 2 * 64 * 2, 2, 10), Null())
    rec = AccessRecorder(cache).attach()
    for i in range(6):
        cache.access(MemoryRequest(address=(i % 3) << 6, cycle=i * 10))
    rec.detach()
    assert len(rec.stream) == 6
    opt = rec.analyze()
    assert opt.hits["non_replay"] + opt.misses["non_replay"] == 6
    # OPT is at least as good as what the real cache achieved.
    assert opt.misses["non_replay"] <= cache.stats.misses["non_replay"]


def test_opt_lower_bounds_real_policies():
    """On a real benchmark stream, OPT's translation misses lower-bound
    the simulated policy's."""
    from repro.cache.opt import AccessRecorder
    from repro.experiments.runner import run_benchmark
    from repro.params import default_config
    from repro.uncore.hierarchy import MemoryHierarchy
    from repro.core.ooo_core import OOOCore
    from repro.workloads.registry import make_trace

    cfg = default_config()
    hierarchy = MemoryHierarchy(cfg)
    recorder = AccessRecorder(hierarchy.llc).attach()
    trace = make_trace("pr", 8000, seed=1)
    OOOCore(cfg, hierarchy).run(trace)
    recorder.detach()
    opt = recorder.analyze()
    assert (opt.misses["translation"]
            <= hierarchy.llc.stats.misses["translation"])
