"""Tests for the TLB model."""

import pytest

from repro.params import TLBConfig
from repro.vm.tlb import TLB


def make_tlb(entries=8, ways=2, track_recall=False):
    return TLB(TLBConfig("STLB", entries, ways, latency=8),
               track_recall=track_recall)


def test_miss_then_hit():
    tlb = make_tlb()
    assert tlb.lookup(0x10) is None
    tlb.fill(0x10, 0x99)
    assert tlb.lookup(0x10) == 0x99
    assert tlb.misses == 1
    assert tlb.hits == 1


def test_lru_eviction_within_set():
    tlb = make_tlb(entries=4, ways=2)  # 2 sets
    s = tlb.num_sets
    a, b, c = 0, s, 2 * s  # same set
    tlb.fill(a, 1)
    tlb.fill(b, 2)
    tlb.lookup(a)          # refresh a
    tlb.fill(c, 3)         # evicts b
    assert tlb.lookup(b) is None
    assert tlb.lookup(a) == 1
    assert tlb.lookup(c) == 3
    assert tlb.evictions == 1


def test_refill_existing_updates_frame():
    tlb = make_tlb()
    tlb.fill(0x10, 1)
    tlb.fill(0x10, 2)
    assert tlb.lookup(0x10) == 2
    assert tlb.evictions == 0


def test_uncounted_lookup_skips_stats():
    tlb = make_tlb()
    tlb.fill(0x10, 1)
    assert tlb.lookup(0x10, count=False) == 1
    assert tlb.lookup(0x99, count=False) is None
    assert tlb.accesses == 0
    assert tlb.misses == 0


def test_mpki_and_miss_rate():
    tlb = make_tlb()
    tlb.lookup(1)
    tlb.fill(1, 1)
    tlb.lookup(1)
    assert tlb.miss_rate == 0.5
    assert tlb.mpki(1000) == 1.0


def test_recall_tracker_records_evicted_reuse():
    tlb = make_tlb(entries=2, ways=2, track_recall=True)  # 1 set
    tlb.fill(1, 1)
    tlb.fill(2, 2)
    tlb.lookup(1)
    tlb.fill(3, 3)  # evicts vpn 2
    for vpn in (4, 5, 6):
        tlb.lookup(vpn)  # unique accesses after the eviction
    tlb.lookup(2)        # recall!
    tlb.recall.flush()
    assert tlb.recall.samples >= 1
    assert tlb.recall.histogram[0] >= 1  # distance 3 <= 10


def test_invalidate_all():
    tlb = make_tlb()
    tlb.fill(0x10, 1)
    tlb.invalidate_all()
    assert tlb.lookup(0x10) is None


def test_reset_stats_preserves_contents():
    tlb = make_tlb()
    tlb.fill(0x10, 1)
    tlb.lookup(0x10)
    tlb.reset_stats()
    assert tlb.accesses == 0
    assert tlb.lookup(0x10) == 1
