"""Tests for trace save/load."""

import numpy as np
import pytest

from repro.workloads.io import FORMAT_VERSION, load_trace, save_trace
from repro.workloads.registry import make_trace


def test_roundtrip(tmp_path):
    trace = make_trace("pr", 2000, seed=5)
    path = tmp_path / "pr.npz"
    save_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == "pr"
    assert np.array_equal(loaded.ips, trace.ips)
    assert np.array_equal(loaded.kinds, trace.kinds)
    assert np.array_equal(loaded.addrs, trace.addrs)


def test_loaded_trace_simulates_identically(tmp_path):
    from repro.core.ooo_core import OOOCore
    from repro.params import default_config
    from repro.uncore.hierarchy import MemoryHierarchy

    trace = make_trace("tc", 3000, seed=2)
    path = tmp_path / "tc.npz"
    save_trace(trace, path)
    loaded = load_trace(path)

    cfg = default_config()
    a = OOOCore(cfg, MemoryHierarchy(cfg)).run(trace, warmup=500)
    b = OOOCore(cfg, MemoryHierarchy(cfg)).run(loaded, warmup=500)
    assert a.cycles == b.cycles


def test_version_check(tmp_path):
    trace = make_trace("tc", 100)
    path = tmp_path / "t.npz"
    np.savez_compressed(path, version=np.int64(FORMAT_VERSION + 1),
                        name=np.bytes_(b"t"), ips=trace.ips,
                        kinds=trace.kinds, addrs=trace.addrs)
    with pytest.raises(ValueError):
        load_trace(path)
