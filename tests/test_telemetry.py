"""Tests for repro.obs.telemetry (registry, exposition, validation)
and repro.obs.log (structured JSON-lines logging)."""

import io
import json
import threading

import pytest

from repro.obs.log import (configure_logging, current_run_id, get_logger,
                           logging_enabled)
from repro.obs.telemetry import (TELEMETRY_SCHEMA, Counter, Gauge,
                                 Histogram, TelemetryRegistry,
                                 TelemetrySchemaError, validate_telemetry,
                                 validate_telemetry_strict)


# ----------------------------------------------------------------------
# Metric primitives
# ----------------------------------------------------------------------
def test_counter_is_monotonic():
    c = Counter("jobs_total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_gauge_set_inc_dec_and_callback():
    g = Gauge("depth")
    g.set(7)
    g.inc(2)
    g.dec()
    assert g.value == 8
    backing = [3]
    live = Gauge("live", fn=lambda: backing[0])
    assert live.value == 3.0
    backing[0] = 9
    assert live.value == 9.0


def test_callback_gauge_failure_reads_zero_not_raise():
    def boom():
        raise RuntimeError("service mid-teardown")
    g = Gauge("flaky", fn=boom)
    assert g.value == 0.0


def test_histogram_cumulative_buckets_and_inf():
    h = Histogram("lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    series = h.series()
    assert series["count"] == 5
    assert series["sum"] == pytest.approx(56.05)
    assert series["buckets"] == [[0.1, 1], [1.0, 3], [10.0, 4],
                                 ["+Inf", 5]]


def test_histogram_rejects_bad_buckets():
    for bad in ((), (1.0, 0.5), (1.0, 1.0)):
        with pytest.raises(ValueError):
            Histogram("x", buckets=bad)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_is_idempotent():
    reg = TelemetryRegistry()
    a = reg.counter("jobs_total", help="jobs")
    b = reg.counter("jobs_total")
    assert a is b
    a.inc()
    assert b.value == 1


def test_registry_labels_distinguish_series():
    reg = TelemetryRegistry()
    run = reg.gauge("state", labels={"state": "running"})
    done = reg.gauge("state", labels={"state": "done"})
    assert run is not done
    assert reg.gauge("state", labels={"state": "running"}) is run


def test_registry_kind_conflict_raises():
    reg = TelemetryRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")


def test_registry_concurrent_increments_are_lossless():
    reg = TelemetryRegistry()
    c = reg.counter("n")

    def bump():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 8000


# ----------------------------------------------------------------------
# Snapshot schema + validation
# ----------------------------------------------------------------------
def make_registry():
    reg = TelemetryRegistry()
    reg.counter("repro_jobs_total", help="jobs").inc(3)
    reg.gauge("repro_depth", fn=lambda: 2)
    reg.gauge("repro_state", labels={"state": "done"}).set(1)
    reg.histogram("repro_wait_seconds",
                  buckets=(0.1, 1.0)).observe(0.5)
    return reg


def test_snapshot_validates_and_round_trips_json():
    doc = make_registry().snapshot()
    assert doc["schema"] == TELEMETRY_SCHEMA
    assert validate_telemetry(doc) == []
    assert validate_telemetry_strict(json.loads(json.dumps(doc))) \
        == json.loads(json.dumps(doc))
    names = {s["name"] for s in doc["series"]}
    assert names == {"repro_jobs_total", "repro_depth", "repro_state",
                     "repro_wait_seconds"}


@pytest.mark.parametrize("mutate, problem", [
    (lambda d: d.update(schema="nope"), "schema"),
    (lambda d: d.update(series="x"), "series"),
    (lambda d: d["series"][0].update(type="warp"), "bad type"),
    (lambda d: d["series"][0].update(value="three"), "non-numeric"),
    (lambda d: d["series"][3]["buckets"].pop(), "+Inf"),
    (lambda d: d["series"][3].update(count=99), "+Inf bucket"),
])
def test_validator_flags_each_break(mutate, problem):
    doc = make_registry().snapshot()
    doc["series"].sort(key=lambda s: s["name"])
    mutate(doc)
    problems = validate_telemetry(doc)
    assert problems and any(problem in p for p in problems)
    with pytest.raises(TelemetrySchemaError):
        validate_telemetry_strict(doc)


def test_negative_counter_is_invalid():
    doc = {"schema": TELEMETRY_SCHEMA,
           "series": [{"name": "n", "type": "counter", "labels": {},
                       "value": -1}]}
    assert any("negative" in p for p in validate_telemetry(doc))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prometheus_rendering_shape():
    text = make_registry().render_prometheus()
    lines = text.splitlines()
    assert "# TYPE repro_jobs_total counter" in lines
    assert "repro_jobs_total 3" in lines
    assert "# TYPE repro_depth gauge" in lines
    assert "repro_depth 2" in lines
    assert 'repro_state{state="done"} 1' in lines
    assert 'repro_wait_seconds_bucket{le="0.1"} 0' in lines
    assert 'repro_wait_seconds_bucket{le="1"} 1' in lines
    assert 'repro_wait_seconds_bucket{le="+Inf"} 1' in lines
    assert "repro_wait_seconds_sum 0.5" in lines
    assert "repro_wait_seconds_count 1" in lines
    assert text.endswith("\n")


def test_prometheus_escapes_label_values():
    reg = TelemetryRegistry()
    reg.gauge("g", labels={"k": 'a"b\\c\nd'}).set(1)
    text = reg.render_prometheus()
    assert r'g{k="a\"b\\c\nd"} 1' in text


# ----------------------------------------------------------------------
# Structured logging (repro.obs.log)
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def reset_log_plane():
    yield
    configure_logging(False, stream=io.StringIO())


def test_logging_is_quiet_by_default(capsys):
    configure_logging(False, stream=io.StringIO())
    assert get_logger("test").emit("nothing", x=1) is None
    assert capsys.readouterr().err == ""


def test_log_records_are_json_lines_with_run_id():
    sink = io.StringIO()
    run_id = configure_logging(True, stream=sink)
    assert logging_enabled()
    assert current_run_id() == run_id
    log = get_logger("service")
    record = log.emit("job-submitted", job="job-1", digest="ab" * 4)
    log.emit("job-done", job="job-1")
    lines = [json.loads(line) for line in
             sink.getvalue().splitlines()]
    assert len(lines) == 2
    assert lines[0]["event"] == "job-submitted"
    assert lines[0]["component"] == "service"
    assert lines[0]["run_id"] == run_id
    assert lines[0]["job"] == "job-1"
    assert {"t_wall", "t_mono"} <= set(lines[0])
    assert lines[1]["t_mono"] >= lines[0]["t_mono"]
    assert record["event"] == "job-submitted"


def test_log_to_path_and_explicit_run_id(tmp_path):
    path = tmp_path / "service.jsonl"
    run_id = configure_logging(True, path=path, run_id="svc-fixed")
    assert run_id == "svc-fixed"
    get_logger("http").emit("http-get", path="/health")
    configure_logging(False, stream=io.StringIO())  # close the file
    rows = [json.loads(line) for line in
            path.read_text().splitlines()]
    assert rows[0]["run_id"] == "svc-fixed"
    assert rows[0]["component"] == "http"


def test_log_stream_and_path_are_exclusive(tmp_path):
    with pytest.raises(ValueError):
        configure_logging(True, stream=io.StringIO(),
                          path=tmp_path / "x.jsonl")


def test_broken_sink_never_raises():
    sink = io.StringIO()
    sink.close()
    configure_logging(True, stream=sink)
    assert get_logger("service").emit("event") is not None
