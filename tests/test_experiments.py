"""Tests for the experiment harness (runner + figure functions).

These use tiny runs: they validate plumbing and result shapes, not the
paper-scale numbers (the benchmarks/ directory regenerates those).
"""

import pytest

from repro.core.rob import StallCategory
from repro.experiments.figures import (FigureResult, fig1_rob_stalls,
                                       fig3_response_distribution,
                                       fig10_replay_rrpv0_degradation,
                                       fig12_newsign_mpki,
                                       fig14_performance,
                                       fig16_stall_reduction,
                                       table2_characterization)
from repro.experiments.runner import run_benchmark
from repro.params import EnhancementConfig, default_config

TINY = dict(instructions=4000, warmup=1000)
TWO = dict(benchmarks=["pr", "xalancbmk"], **TINY)


def test_run_benchmark_produces_metrics():
    r = run_benchmark("pr", **TINY)
    assert r.benchmark == "pr"
    assert r.instructions == 4000
    assert r.cycles > 0
    assert r.stlb_mpki > 0
    s = r.summary()
    assert set(s) >= {"ipc", "stlb_mpki", "llc_replay_mpki",
                      "stall_translation", "stall_replay"}


def test_run_benchmark_respects_config():
    cfg = default_config().with_(enhancements=EnhancementConfig.full())
    r = run_benchmark("pr", config=cfg, **TINY)
    assert r.hierarchy.atp is not None


def test_speedup_between_runs():
    base = run_benchmark("pr", **TINY)
    again = run_benchmark("pr", **TINY)
    assert again.speedup_over(base) == pytest.approx(1.0)  # deterministic


def test_fig1_shape():
    res = fig1_rob_stalls(**TWO)
    assert isinstance(res, FigureResult)
    assert len(res.rows) == 3  # two benchmarks + mean
    assert "pr" in res.data
    assert res.data["pr"]["replay_avg"] >= 0
    assert str(res).startswith("[Fig 1]")


def test_fig1_replay_stalls_exceed_translation_stalls():
    """The paper's central Fig 1 claim at any scale: replay loads stall
    the head of the ROB for much longer, in aggregate, than the walks
    themselves (most walks hit on-chip; replay data goes to DRAM)."""
    res = fig1_rob_stalls(benchmarks=["pr"], instructions=12_000,
                          warmup=3_000)
    assert (res.data["pr"]["replay_total"]
            > res.data["pr"]["translation_total"])


def test_fig3_fractions_sum_to_one():
    res = fig3_response_distribution(benchmarks=["pr"], **TINY)
    t = res.data["pr"]["translation"]
    assert sum(t.values()) == pytest.approx(1.0)


def test_fig10_returns_normalized_performance():
    res = fig10_replay_rrpv0_degradation(benchmarks=["pr"], **TINY)
    assert 0.3 < res.data["pr"] < 1.5


def test_fig12_rows_per_variant():
    res = fig12_newsign_mpki(benchmarks=["pr"], **TINY)
    assert set(res.data["pr"]) == {"ship", "newsign", "t_ship"}


def test_fig14_has_all_variants_and_gmean():
    res = fig14_performance(benchmarks=["pr"], **TINY)
    assert list(res.data["pr"]) == ["T-DRRIP", "+T-SHiP", "+ATP", "+TEMPO"]
    assert "gmean" in res.data


def test_fig16_reductions_bounded():
    res = fig16_stall_reduction(benchmarks=["pr"], **TINY)
    for key in ("translation", "replay", "combined"):
        assert res.data["pr"][key] <= 1.0


def test_table2_reports_measured_and_reference():
    res = table2_characterization(benchmarks=["pr"], **TINY)
    assert res.data["pr"]["stlb_mpki"] > 0
    assert any("STLB(paper)" in h for h in res.headers)
