"""Tests for trace generation and the benchmark registry."""

import numpy as np
import pytest

from repro.params import DEFAULT_SCALE, PAGE_SHIFT
from repro.workloads import (BENCHMARKS, KIND_LOAD, KIND_NONMEM, KIND_STORE,
                             PatternMix, SyntheticWorkload, Trace,
                             benchmark_names, make_trace)
from repro.workloads.registry import benchmark, categorize
from repro.workloads.synthetic import RANDOM_BASE, SEQ_BASE


def test_trace_validates_lengths():
    with pytest.raises(ValueError):
        Trace(np.zeros(3), np.zeros(2, dtype=np.int8), np.zeros(3))


def test_trace_slicing_and_records():
    t = make_trace("tc", 100)
    half = t[:50]
    assert len(half) == 50
    recs = list(half.records())
    assert len(recs) == 50
    assert all(isinstance(r[0], int) for r in recs[:3])


def test_trace_concatenate():
    a = make_trace("tc", 50)
    b = make_trace("pr", 50)
    c = Trace.concatenate([a, b])
    assert len(c) == 100


def test_generation_deterministic_per_seed():
    t1 = make_trace("pr", 500, seed=3)
    t2 = make_trace("pr", 500, seed=3)
    assert np.array_equal(t1.addrs, t2.addrs)
    t3 = make_trace("pr", 500, seed=4)
    assert not np.array_equal(t1.addrs, t3.addrs)


def test_load_rate_matches_mix():
    info = benchmark("pr")
    t = make_trace("pr", 50_000)
    expected = info.mix.loads_per_kilo
    assert t.loads_per_kilo() == pytest.approx(expected, rel=0.1)


def test_kinds_are_valid():
    t = make_trace("canneal", 5000)
    assert set(np.unique(t.kinds)) <= {KIND_NONMEM, KIND_LOAD, KIND_STORE}


def test_nonmem_addresses_zero():
    t = make_trace("mcf", 5000)
    nonmem = t.kinds == KIND_NONMEM
    assert (t.addrs[nonmem] == 0).all()


def test_memory_addresses_populated():
    t = make_trace("mcf", 5000)
    mem = t.kinds != KIND_NONMEM
    assert (t.addrs[mem] > 0).all()


def test_footprint_scales_down():
    big = make_trace("pr", 20_000, scale=1)
    small = make_trace("pr", 20_000, scale=DEFAULT_SCALE)
    assert small.footprint_pages() < big.footprint_pages()


def test_random_region_bounded_by_mix():
    info = benchmark("cc")
    t = make_trace("cc", 30_000, scale=DEFAULT_SCALE)
    rand = t.addrs[(t.addrs >= RANDOM_BASE)]
    pages = np.unique(rand >> PAGE_SHIFT) - (RANDOM_BASE >> PAGE_SHIFT)
    assert pages.max() < max(64, info.mix.random_pages // DEFAULT_SCALE)


def test_pointer_chase_revisits_sequence():
    """mcf's permutation cycle gives recurring page sequences."""
    mix = PatternMix(loads_per_kilo=1000, stores_per_kilo=0,
                     random_fraction=1.0, seq_fraction=0.0,
                     random_pages=1600, pointer_chase=True)
    t = SyntheticWorkload(mix).generate(400, scale=16, seed=1)
    pages = (t.addrs[t.kinds == KIND_LOAD] >> PAGE_SHIFT)
    n = 1600 // 16
    first, second = pages[:n], pages[n:2 * n]
    assert np.array_equal(first, second)  # the cycle repeats


def test_fractions_validation():
    with pytest.raises(ValueError):
        SyntheticWorkload(PatternMix(random_fraction=0.7, seq_fraction=0.5))


def test_generate_validates_count():
    with pytest.raises(ValueError):
        SyntheticWorkload(PatternMix()).generate(0)


def test_registry_has_table2_benchmarks():
    assert benchmark_names() == ["xalancbmk", "tc", "canneal", "mis", "mcf",
                                 "bf", "radii", "cc", "pr"]
    for name in benchmark_names():
        info = benchmark(name)
        assert info.category in ("Low", "Medium", "High")


def test_registry_unknown_benchmark():
    with pytest.raises(ValueError):
        benchmark("gcc")


def test_categorize_thresholds():
    assert categorize(4.0) == "Low"
    assert categorize(15.0) == "Medium"
    assert categorize(80.0) == "High"


def test_categories_match_registry():
    """The registry categories agree with the paper's Table II bands."""
    from repro.workloads.registry import TABLE2_REFERENCE
    for name, ref in TABLE2_REFERENCE.items():
        assert categorize(ref["stlb"]) == benchmark(name).category
