"""Tests for the Hawkeye policy (OPTgen + PC predictor)."""

import pytest

from repro.cache.replacement.hawkeye import HawkeyePolicy, _SetHistory
from repro.cache.store import CacheStore
from repro.memsys.request import MemoryRequest


def req(ip=0x400, addr=0x1000):
    return MemoryRequest(address=addr, cycle=0, ip=ip)


def bound(pol):
    store = CacheStore(pol.num_sets, pol.num_ways)
    pol.bind(store)
    return store


def test_set_history_first_access_has_no_outcome():
    h = _SetHistory(ways=2)
    assert h.access(0x1, signature=7) is None


def test_set_history_opt_hit_within_capacity():
    h = _SetHistory(ways=2)
    h.access(0x1, 7)
    h.access(0x2, 8)
    outcome = h.access(0x1, 7)
    assert outcome == (True, 7)


def test_set_history_opt_miss_when_interval_full():
    h = _SetHistory(ways=1)
    h.access(0x1, 7)
    # Two other lines hit-reuse in between, saturating occupancy 1.
    h.access(0x2, 8)
    h.access(0x2, 8)   # opt hit: occupies the interval
    h.access(0x3, 9)
    h.access(0x3, 9)   # opt hit: occupies
    outcome = h.access(0x1, 7)
    assert outcome is not None
    assert outcome[0] is False  # OPT would not have kept line 1


def test_predictor_trains_toward_averse():
    pol = HawkeyePolicy(64, 4)
    r = req(ip=0x42)
    sig = pol.signature(r)
    for _ in range(10):
        pol._train(sig, positive=False)
    assert not pol._is_friendly(sig)
    assert pol.insertion_rrpv(0, r) == pol.max_rrpv


def test_predictor_trains_toward_friendly():
    pol = HawkeyePolicy(64, 4)
    r = req(ip=0x42)
    sig = pol.signature(r)
    for _ in range(10):
        pol._train(sig, positive=True)
    assert pol._is_friendly(sig)
    assert pol.insertion_rrpv(0, r) == 0


def test_victim_prefers_cache_averse():
    pol = HawkeyePolicy(64, 4)
    store = bound(pol)
    store.rrpv[3] = pol.max_rrpv
    assert pol.victim(0, req()) == 3


def test_victim_falls_back_to_oldest_friendly():
    pol = HawkeyePolicy(64, 4)
    store = bound(pol)
    for way in range(4):
        store.rrpv[way] = way  # none at max (7)
    assert pol.victim(0, req()) == 3


def test_on_fill_observes_sampled_sets_only():
    pol = HawkeyePolicy(1024, 4)
    assert len(pol._histories) <= 2 * HawkeyePolicy.SAMPLED_SETS
    bound(pol)
    sampled = next(iter(pol._histories))
    before = pol._histories[sampled].time
    pol.on_fill(sampled, 0, req())
    assert pol._histories[sampled].time == before + 1


def test_detrain_on_unreused_friendly_eviction():
    pol = HawkeyePolicy(64, 4)
    store = bound(pol)
    r = req(ip=0x42)
    sig = pol.signature(r)
    start = pol._predictor[sig]
    set_idx = 9999 % 64
    slot = set_idx * pol.num_ways
    store.valid[slot] = 1
    pol.on_fill(set_idx, 0, r)  # friendly predictor: inserts at RRPV 0
    assert store.rrpv[slot] == 0
    assert not store.reused[slot]
    pol.on_evict(set_idx, 0)
    assert pol._predictor[sig] == max(0, start - 1)
