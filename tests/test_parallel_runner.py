"""Tests for the parallel, memoised experiment runner
(:mod:`repro.experiments.parallel`)."""

import pytest

from repro.experiments import parallel
from repro.experiments.figures import (fig1_rob_stalls, fig4_translation_mpki,
                                       fig14_performance)
from repro.experiments.parallel import (ParallelRunner, ResultCache, RunKey,
                                        RunSummary, config_digest)
from repro.experiments.runner import run_benchmark
from repro.params import EnhancementConfig, default_config

TINY_N, TINY_W = 2500, 600


@pytest.fixture(autouse=True)
def _isolate_ambient_runner():
    """Leave no test-configured global runner behind."""
    yield
    parallel.set_runner(None)


def keys_for(benchmarks, config=None, seed=1):
    return [RunKey.make(b, config, TINY_N, TINY_W, seed=seed)
            for b in benchmarks]


# ----------------------------------------------------------------------
# RunKey identity
# ----------------------------------------------------------------------
def test_runkey_equality_and_digest_follow_config():
    a = RunKey.make("pr", None, TINY_N, TINY_W)
    b = RunKey.make("pr", default_config(), TINY_N, TINY_W)
    assert a == b and hash(a) == hash(b) and a.digest == b.digest

    full = default_config().with_(enhancements=EnhancementConfig.full())
    c = RunKey.make("pr", full, TINY_N, TINY_W)
    assert c != a and c.digest != a.digest
    assert config_digest(full) != config_digest(default_config())

    d = RunKey.make("pr", None, TINY_N, TINY_W, seed=2)
    assert d != a and d.digest != a.digest


# ----------------------------------------------------------------------
# RunSummary fidelity
# ----------------------------------------------------------------------
def test_summary_mirrors_run_result():
    run = run_benchmark("pr", instructions=TINY_N, warmup=TINY_W)
    cycles, metrics = run.cycles, run.summary()
    fractions = run.hierarchy.response_distribution.fractions("replay")
    s = RunSummary.from_run(run)
    assert s.cycles == cycles
    assert s.ipc == pytest.approx(run.ipc)
    assert s.summary() == metrics
    assert s.stlb_mpki == metrics["stlb_mpki"]
    assert s.cache_mpki("llc", "replay") == metrics["llc_replay_mpki"]
    assert s.leaf_mpki("l2c") == metrics["l2c_ptl1_mpki"]
    assert s.response_fractions("replay") == fractions
    assert sum(s.response_fractions("translation").values()) == \
        pytest.approx(1.0)


def test_summary_round_trips_through_json_dict():
    import json
    run = run_benchmark("tc", instructions=TINY_N, warmup=TINY_W)
    s = RunSummary.from_run(run)
    restored = RunSummary.from_dict(json.loads(json.dumps(s.to_dict())))
    assert restored.to_dict() == s.to_dict()


# ----------------------------------------------------------------------
# Determinism: parallel == serial, bit for bit (satellite requirement)
# ----------------------------------------------------------------------
def test_parallel_matches_serial_bit_identical(tmp_path):
    """jobs=4 over 3 benchmarks x 2 configs must produce bit-identical
    RunSummary dicts to serial execution, and a second invocation must
    be served entirely from the ResultCache."""
    benchmarks = ("pr", "tc", "mcf")
    configs = (None,
               default_config().with_(
                   enhancements=EnhancementConfig.full()))
    keys = [k for cfg in configs for k in keys_for(benchmarks, cfg)]

    serial = ParallelRunner(jobs=1)
    serial_out = serial.run_batch(keys)
    assert serial.metrics.executed == 6

    par = ParallelRunner(jobs=4, cache=ResultCache(root=tmp_path))
    par_out = par.run_batch(keys)
    assert par.metrics.executed == 6
    assert par.metrics.cache_hits == 0
    for key in keys:
        assert par_out[key].to_dict() == serial_out[key].to_dict(), key

    again = par.run_batch(keys)
    assert par.metrics.executed == 6        # nothing re-simulated
    assert par.metrics.cache_hits == 6      # all six memoised
    for key in keys:
        assert again[key].to_dict() == serial_out[key].to_dict(), key


def test_duplicate_keys_collapse_to_one_simulation():
    runner = ParallelRunner(jobs=1)
    key = RunKey.make("pr", None, TINY_N, TINY_W)
    out = runner.run_batch([key, RunKey.make("pr", None, TINY_N, TINY_W)])
    assert runner.metrics.executed == 1
    assert len(out) == 1


# ----------------------------------------------------------------------
# ResultCache behaviour
# ----------------------------------------------------------------------
def test_cache_roundtrip_and_versioning(tmp_path):
    key = RunKey.make("pr", None, TINY_N, TINY_W)
    summary = RunSummary.from_run(
        run_benchmark("pr", instructions=TINY_N, warmup=TINY_W))
    cache = ResultCache(root=tmp_path, fingerprint="aaaa")
    assert cache.get(key) is None
    cache.put(key, summary)
    assert cache.get(key).to_dict() == summary.to_dict()
    # A different code fingerprint must not see the old results.
    assert ResultCache(root=tmp_path, fingerprint="bbbb").get(key) is None
    # Pruning removes stale fingerprint directories, keeps the current.
    stale = ResultCache(root=tmp_path, fingerprint="bbbb")
    stale.put(key, summary)
    assert cache.prune_stale() == 1
    assert cache.get(key) is not None
    assert stale.get(key) is None


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(root=tmp_path, fingerprint="aaaa")
    key = RunKey.make("pr", None, TINY_N, TINY_W)
    cache.path_for(key).parent.mkdir(parents=True)
    cache.path_for(key).write_text("{not json")
    assert cache.get(key) is None


# ----------------------------------------------------------------------
# Failure handling and progress reporting
# ----------------------------------------------------------------------
def test_transient_failure_is_retried_once(monkeypatch):
    real = parallel._execute_key
    calls = {"n": 0}

    def flaky(key):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return real(key)

    monkeypatch.setattr(parallel, "_execute_key", flaky)
    runner = ParallelRunner(jobs=1)
    out = runner.run_batch(keys_for(["pr"]))
    assert len(out) == 1
    assert runner.metrics.retries == 1
    assert runner.metrics.failures == 0


def test_persistent_failure_raises_after_retry():
    runner = ParallelRunner(jobs=1)
    with pytest.raises(ValueError):
        runner.run_batch(keys_for(["no-such-benchmark"]))
    assert runner.metrics.retries == 1
    assert runner.metrics.failures == 1


def test_progress_callback_sees_cache_and_run_events(tmp_path):
    events = []
    cache = ResultCache(root=tmp_path)
    runner = ParallelRunner(jobs=1, cache=cache, progress=events.append)
    runner.run_batch(keys_for(["pr", "tc"]))
    runner.run_batch(keys_for(["pr", "tc"]))
    sources = [e.source for e in events]
    assert sources == ["run", "run", "cache", "cache"]
    assert [e.done for e in events] == [1, 2, 1, 2]
    assert all(e.total == 2 for e in events)
    assert all(e.wall_time > 0 for e in events if e.source == "run")


# ----------------------------------------------------------------------
# Figure harness integration (acceptance criterion): regenerating
# several figures back to back performs each unique simulation once.
# ----------------------------------------------------------------------
def test_figures_back_to_back_simulate_each_unique_run_once(tmp_path):
    two = ["pr", "xalancbmk"]
    runner = parallel.configure(jobs=4, use_cache=True, cache_dir=tmp_path)
    fig1_rob_stalls(benchmarks=two, instructions=TINY_N, warmup=TINY_W)
    fig4_translation_mpki(benchmarks=two, policies=["lru", "ship"],
                          instructions=TINY_N, warmup=TINY_W)
    fig14_performance(benchmarks=two, instructions=TINY_N, warmup=TINY_W)
    # 16 (benchmark, config) pairs are requested across the three
    # figures but only 12 are unique: fig4's "ship" column IS the
    # default baseline (cache hit with fig1's runs), and fig14's "base"
    # column recurs again.  Each unique simulation runs exactly once.
    assert runner.metrics.jobs_done == 16
    assert runner.metrics.executed == 12
    assert runner.metrics.cache_hits == 4
    # Regenerating a figure again simulates nothing new.
    fig14_performance(benchmarks=two, instructions=TINY_N, warmup=TINY_W)
    assert runner.metrics.executed == 12
    assert runner.metrics.cache_hits == 14


def test_run_one_routes_through_ambient_runner(tmp_path):
    runner = parallel.configure(jobs=1, use_cache=True, cache_dir=tmp_path)
    first = parallel.run_one("pr", instructions=TINY_N, warmup=TINY_W)
    second = parallel.run_one("pr", instructions=TINY_N, warmup=TINY_W)
    assert runner.metrics.executed == 1
    assert runner.metrics.cache_hits == 1
    assert first.to_dict() == second.to_dict()
