"""Every example script must at least parse and compile.

(Full executions are exercised manually / by the figure benches; this
guards against bit-rot in the examples directory.)"""

import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parent.parent.joinpath("examples")
    .glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable minimum


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"),
                       doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard_and_docstring(path):
    source = path.read_text()
    assert '__name__ == "__main__"' in source, path.name
    assert source.lstrip().startswith(('"""', '#!')), path.name
