"""Tests for repro.obs.progress: EventStream semantics (ordering under
concurrency, late-subscriber replay, the bounded backlog) and NDJSON
framing of forwarded job-progress events end-to-end through the HTTP
server."""

import json
import threading
import urllib.request

import pytest

from repro.obs.progress import DEFAULT_BACKLOG, EventStream, Heartbeat


# ----------------------------------------------------------------------
# Ordering and replay
# ----------------------------------------------------------------------
def test_seq_is_dense_and_snapshot_slices():
    stream = EventStream()
    for i in range(5):
        stream.emit(kind="tick", i=i)
    events = stream.snapshot()
    assert [e["seq"] for e in events] == list(range(5))
    assert [e["i"] for e in stream.snapshot(3)] == [3, 4]
    assert stream.snapshot(99) == []
    assert len(stream) == 5


def test_late_subscriber_replays_full_history():
    stream = EventStream()
    for i in range(4):
        stream.emit(i=i)
    stream.close()
    # A subscriber arriving after close still sees every event, once.
    assert [e["i"] for e in stream.follow()] == [0, 1, 2, 3]
    # And again: replay does not consume.
    assert [e["i"] for e in stream.follow()] == [0, 1, 2, 3]


def test_concurrent_emitters_yield_unique_ordered_seqs():
    stream = EventStream()
    per_thread = 500

    def emitter(tag):
        for i in range(per_thread):
            stream.emit(tag=tag, i=i)

    threads = [threading.Thread(target=emitter, args=(t,))
               for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stream.close()
    events = stream.snapshot()
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 4 * per_thread
    # Per-emitter order is preserved within the interleaving.
    for tag in range(4):
        mine = [e["i"] for e in events if e["tag"] == tag]
        assert mine == list(range(per_thread))


def test_follower_thread_sees_live_emits_in_order():
    stream = EventStream()
    seen = []

    def consume():
        for event in stream.follow():
            seen.append(event["i"])

    thread = threading.Thread(target=consume)
    thread.start()
    for i in range(200):
        stream.emit(i=i)
    stream.close()
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert seen == list(range(200))


def test_wait_for_unblocks_on_emit_and_close():
    stream = EventStream()
    assert stream.wait_for(0, timeout=0.01) is False
    stream.emit(i=0)
    assert stream.wait_for(0) is True
    assert stream.wait_for(1, timeout=0.01) is False
    stream.close()
    assert stream.wait_for(1, timeout=0.01) is False  # closed, never emitted


# ----------------------------------------------------------------------
# Bounded backlog (the dropped_events satellite)
# ----------------------------------------------------------------------
def test_default_backlog_is_bounded():
    assert EventStream().maxlen == DEFAULT_BACKLOG


def test_unbounded_growth_is_capped_with_dropped_counter():
    drops = []
    stream = EventStream(maxlen=10, on_drop=drops.append)
    for i in range(100):
        stream.emit(i=i)
    assert len(stream) == 100          # total emitted, for consumers
    assert stream.dropped == 90
    assert sum(drops) == 90
    retained = stream.snapshot()
    assert len(retained) == 10
    # The newest events are the ones kept, seq numbering intact.
    assert [e["seq"] for e in retained] == list(range(90, 100))


def test_snapshot_start_maps_through_dropped_prefix():
    stream = EventStream(maxlen=5)
    for i in range(20):
        stream.emit(i=i)
    # Asking for an already-dropped range resumes at the oldest kept.
    assert [e["seq"] for e in stream.snapshot(0)] \
        == [15, 16, 17, 18, 19]
    assert [e["seq"] for e in stream.snapshot(17)] == [17, 18, 19]


def test_follow_skips_over_dropped_events_without_stalling():
    stream = EventStream(maxlen=4)
    for i in range(50):
        stream.emit(i=i)
    stream.close()
    seen = [e["seq"] for e in stream.follow()]
    assert seen == [46, 47, 48, 49]


def test_slow_follower_detects_loss_via_seq_gap():
    stream = EventStream(maxlen=8)
    it = stream.follow(timeout=0.05)
    stream.emit(i=0)
    first = next(it)
    assert first["seq"] == 0
    for i in range(1, 30):  # overflow while the follower sleeps
        stream.emit(i=i)
    stream.close()
    rest = list(it)
    assert rest[0]["seq"] > 1  # the gap IS the loss signal
    assert [e["seq"] for e in rest] == list(range(22, 30))


def test_on_drop_callback_failure_is_swallowed():
    stream = EventStream(maxlen=1,
                         on_drop=lambda n: (_ for _ in ()).throw(
                             RuntimeError("boom")))
    stream.emit(i=0)
    stream.emit(i=1)  # drops i=0; the callback raising must not surface
    assert stream.dropped == 1


def test_maxlen_must_be_positive():
    with pytest.raises(ValueError):
        EventStream(maxlen=0)


# ----------------------------------------------------------------------
# Heartbeat -> EventStream mirroring
# ----------------------------------------------------------------------
class _Key:
    benchmark = "pr"
    config_hash = "ab" * 16
    seed = 1


class _Event:
    key = _Key()
    done, total, source, wall_time = 3, 10, "run", 1.25


def test_heartbeat_mirrors_into_stream_and_file(tmp_path):
    path = tmp_path / "hb.jsonl"
    stream = EventStream()
    with Heartbeat(path, stream=stream) as hb:
        hb.emit(_Event())
        hb.emit(_Event())
    mirrored = stream.snapshot()
    assert [e["kind"] for e in mirrored] == ["heartbeat", "heartbeat"]
    assert mirrored[0]["benchmark"] == "pr"
    assert mirrored[0]["done"] == 3
    lines = [json.loads(line) for line in
             path.read_text().splitlines()]
    assert len(lines) == 3 and lines[-1]["final"] is True


# ----------------------------------------------------------------------
# job-progress NDJSON framing end-to-end over HTTP
# ----------------------------------------------------------------------
def progress_execute(spec_dict, progress=None, progress_interval=None):
    """Stub executor that forwards three deterministic rows."""
    if progress is not None:
        for i in range(3):
            progress({"interval": i, "instructions": (i + 1) * 100,
                      "cycle": (i + 1) * 250, "ipc": 0.4,
                      "l2_mpki": 1.5, "llc_mpki": 0.5,
                      "walk_cycles": 10 * i, "pct": (i + 1) / 4})
    return {"benchmark": spec_dict.get("benchmark"), "cycles": 1000,
            "instructions": 400, "metrics": {"ipc": 0.4},
            "walk_cycles_total": 30}


progress_execute.supports_progress = True


@pytest.fixture
def progress_server(tmp_path):
    from repro.service import JobStore, SweepService
    from repro.service.http import build_server
    service = SweepService(store=JobStore(root=tmp_path), workers=0,
                           execute=progress_execute,
                           progress_interval=100)
    httpd, runtime = build_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        httpd.shutdown()
        httpd.server_close()
        runtime.stop()
        thread.join(timeout=10)


def test_job_progress_events_frame_as_ndjson_over_http(progress_server):
    from repro.service.cli import request, wait_for_job
    url, service = progress_server
    job = request(url, "/jobs", method="POST",
                  body={"kind": "run", "benchmark": "tc",
                        "instructions": 400, "warmup": 100})
    wait_for_job(url, job["id"])

    req = urllib.request.Request(url + f"/jobs/{job['id']}/events")
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        assert resp.headers.get("Transfer-Encoding") == "chunked"
        raw = [line for line in resp if line.strip()]
    events = [json.loads(line) for line in raw]
    # One JSON object per line, seq strictly increasing.
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    progress = [e for e in events if e.get("kind") == "job-progress"]
    # 3 forwarded rows + the authoritative service-side final row.
    assert len(progress) == 4
    assert [p["interval"] for p in progress[:3]] == [0, 1, 2]
    final = progress[-1]
    assert final["final"] is True and final["pct"] == 1.0
    assert final["cycle"] == 1000 and final["walk_cycles"] == 30
    # Lifecycle events interleave correctly around the rows.
    statuses = [e["status"] for e in events if e.get("kind") == "status"]
    assert statuses == ["pending", "running", "done"]
    # The job document carries the latest row for dashboards.
    doc = request(url, f"/jobs/{job['id']}")
    assert doc["progress"]["final"] is True
    assert doc["events_dropped"] == 0


def test_progress_rows_count_into_telemetry(progress_server):
    from repro.service.cli import request, wait_for_job
    url, service = progress_server
    job = request(url, "/jobs", method="POST",
                  body={"kind": "run", "benchmark": "mg",
                        "instructions": 400, "warmup": 100})
    wait_for_job(url, job["id"])
    health = request(url, "/health")
    assert health["gauges"]["progress_events"] == 4
    metrics_req = urllib.request.Request(url + "/metrics")
    with urllib.request.urlopen(metrics_req, timeout=30) as resp:
        text = resp.read().decode()
    assert "repro_progress_events_total 4" in text
