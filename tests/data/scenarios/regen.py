#!/usr/bin/env python
"""Regenerate the golden scenario-result fixtures.

Run from the repo root after an *intentional* behavioural change::

    PYTHONPATH=src python tests/data/scenarios/regen.py

The pinned geometry must match ``tests/test_scenarios.py``.
"""

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parents[2] / "src"))

GOLDEN_INSTRUCTIONS = 4_000
GOLDEN_WARMUP = 500
NAMES = ("SYN-01-STLB-THRASH", "RL-01-GRAPH-SOUP")


def main() -> int:
    from repro.scenarios import run_scenario
    for name in NAMES:
        result = run_scenario(name, instructions=GOLDEN_INSTRUCTIONS,
                              warmup=GOLDEN_WARMUP)
        record = result.jsonl_record(timestamp=False)
        out = HERE / f"{name}.golden.json"
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out} (ipc={record['ipc']}, "
              f"cycles={record['cycles']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
