"""Tests for the RRIP-family replacement policies (SRRIP, BRRIP, DRRIP)."""

import pytest

from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.srrip import BRRIPPolicy, SRRIPPolicy
from repro.cache.store import CacheStore
from repro.memsys.request import MemoryRequest


def bound(pol, fill_set=None):
    """Bind a fresh store; optionally mark every way of one set valid."""
    store = CacheStore(pol.num_sets, pol.num_ways)
    pol.bind(store)
    if fill_set is not None:
        base = fill_set * pol.num_ways
        for way in range(pol.num_ways):
            store.valid[base + way] = 1
            store.line[base + way] = fill_set + way * pol.num_sets
    return store


def req(ip=0x400):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip)


def test_srrip_inserts_long():
    pol = SRRIPPolicy(4, 4)
    assert pol.insertion_rrpv(0, req()) == pol.max_rrpv - 1


def test_srrip_hit_promotes_to_zero():
    pol = SRRIPPolicy(4, 4)
    store = bound(pol)
    store.rrpv[0] = 3
    pol.on_hit(0, 0, req())
    assert store.rrpv[0] == 0


def test_srrip_victim_prefers_max_rrpv():
    pol = SRRIPPolicy(4, 4)
    store = bound(pol, fill_set=0)
    store.rrpv[2] = pol.max_rrpv
    assert pol.victim(0, req()) == 2


def test_srrip_victim_ages_until_max():
    pol = SRRIPPolicy(4, 2)
    store = bound(pol, fill_set=0)
    store.rrpv[0], store.rrpv[1] = 1, 2
    way = pol.victim(0, req())
    assert way == 1                # aged by one: block 1 reaches 3 first
    assert store.rrpv[0] == 2      # aging side effect


def test_brrip_inserts_mostly_distant():
    pol = BRRIPPolicy(4, 4)
    rrpvs = [pol.insertion_rrpv(0, req()) for _ in range(64)]
    distant = sum(1 for r in rrpvs if r == pol.max_rrpv)
    long = sum(1 for r in rrpvs if r == pol.max_rrpv - 1)
    assert long == 64 // BRRIPPolicy.LONG_INTERVAL
    assert distant == 64 - long


def test_drrip_has_disjoint_leader_sets():
    pol = DRRIPPolicy(64, 8)
    assert pol._srrip_leaders
    assert pol._brrip_leaders
    assert not (pol._srrip_leaders & pol._brrip_leaders)


def test_drrip_srrip_leader_always_inserts_long():
    pol = DRRIPPolicy(64, 8)
    leader = next(iter(pol._srrip_leaders))
    for _ in range(50):
        assert pol.insertion_rrpv(leader, req()) == pol.max_rrpv - 1


def test_drrip_psel_steers_followers():
    pol = DRRIPPolicy(256, 8)
    follower = next(s for s in range(256)
                    if s not in pol._srrip_leaders
                    and s not in pol._brrip_leaders)
    # Drive PSEL low: misses in BRRIP leaders mean BRRIP is bad -> SRRIP wins.
    brrip_leader = next(iter(pol._brrip_leaders))
    for _ in range(600):
        pol.record_miss(brrip_leader)
    assert not pol._uses_brrip(follower)
    # Now punish SRRIP leaders harder.
    srrip_leader = next(iter(pol._srrip_leaders))
    for _ in range(1200):
        pol.record_miss(srrip_leader)
    assert pol._uses_brrip(follower)


def test_demote_sets_max_rrpv():
    pol = SRRIPPolicy(4, 4)
    store = bound(pol)
    store.rrpv[0] = 0
    pol.demote(0, 0)
    assert store.rrpv[0] == pol.max_rrpv
