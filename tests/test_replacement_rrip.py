"""Tests for the RRIP-family replacement policies (SRRIP, BRRIP, DRRIP)."""

import pytest

from repro.cache.block import CacheBlock
from repro.cache.replacement.drrip import DRRIPPolicy
from repro.cache.replacement.srrip import BRRIPPolicy, SRRIPPolicy
from repro.memsys.request import MemoryRequest


def blocks(n):
    out = []
    for _ in range(n):
        b = CacheBlock()
        b.valid = True
        out.append(b)
    return out


def req(ip=0x400):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip)


def test_srrip_inserts_long():
    pol = SRRIPPolicy(4, 4)
    assert pol.insertion_rrpv(0, req()) == pol.max_rrpv - 1


def test_srrip_hit_promotes_to_zero():
    pol = SRRIPPolicy(4, 4)
    b = CacheBlock()
    b.rrpv = 3
    pol.on_hit(0, 0, req(), b)
    assert b.rrpv == 0


def test_srrip_victim_prefers_max_rrpv():
    pol = SRRIPPolicy(4, 4)
    bs = blocks(4)
    bs[2].rrpv = pol.max_rrpv
    assert pol.victim(0, req(), bs) == 2


def test_srrip_victim_ages_until_max():
    pol = SRRIPPolicy(4, 2)
    bs = blocks(2)
    bs[0].rrpv, bs[1].rrpv = 1, 2
    way = pol.victim(0, req(), bs)
    assert way == 1          # aged by one: block 1 reaches 3 first
    assert bs[0].rrpv == 2   # aging side effect


def test_brrip_inserts_mostly_distant():
    pol = BRRIPPolicy(4, 4)
    rrpvs = [pol.insertion_rrpv(0, req()) for _ in range(64)]
    distant = sum(1 for r in rrpvs if r == pol.max_rrpv)
    long = sum(1 for r in rrpvs if r == pol.max_rrpv - 1)
    assert long == 64 // BRRIPPolicy.LONG_INTERVAL
    assert distant == 64 - long


def test_drrip_has_disjoint_leader_sets():
    pol = DRRIPPolicy(64, 8)
    assert pol._srrip_leaders
    assert pol._brrip_leaders
    assert not (pol._srrip_leaders & pol._brrip_leaders)


def test_drrip_srrip_leader_always_inserts_long():
    pol = DRRIPPolicy(64, 8)
    leader = next(iter(pol._srrip_leaders))
    for _ in range(50):
        assert pol.insertion_rrpv(leader, req()) == pol.max_rrpv - 1


def test_drrip_psel_steers_followers():
    pol = DRRIPPolicy(256, 8)
    follower = next(s for s in range(256)
                    if s not in pol._srrip_leaders
                    and s not in pol._brrip_leaders)
    # Drive PSEL low: misses in BRRIP leaders mean BRRIP is bad -> SRRIP wins.
    brrip_leader = next(iter(pol._brrip_leaders))
    for _ in range(600):
        pol.record_miss(brrip_leader)
    assert not pol._uses_brrip(follower)
    # Now punish SRRIP leaders harder.
    srrip_leader = next(iter(pol._srrip_leaders))
    for _ in range(1200):
        pol.record_miss(srrip_leader)
    assert pol._uses_brrip(follower)


def test_demote_sets_max_rrpv():
    pol = SRRIPPolicy(4, 4)
    b = CacheBlock()
    b.rrpv = 0
    pol.demote(0, 0, b)
    assert b.rrpv == pol.max_rrpv
