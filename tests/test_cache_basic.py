"""Tests for repro.cache.cache: hits, misses, fills, evictions,
writebacks, MSHR interaction, ideal modes and prefetch handling."""

import pytest

from repro.cache.cache import Cache
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import CacheConfig


class FakeMemory:
    """Constant-latency backing store that records accesses."""

    def __init__(self, latency=100):
        self.latency = latency
        self.accesses = []

    def access(self, req):
        self.accesses.append((req.line_addr, req.cycle, req.access_type))
        req.served_by = "DRAM"
        return req.cycle + self.latency


def small_cache(**kwargs):
    mem = FakeMemory()
    config = CacheConfig("T", size_bytes=4 * 64 * 2, ways=2, latency=10,
                         mshr_entries=8, replacement="lru")
    cache = Cache(config, mem, **kwargs)
    return cache, mem


def load(addr, cycle=0, **kw):
    return MemoryRequest(address=addr, cycle=cycle, **kw)


def test_geometry():
    cache, _ = small_cache()
    assert cache.num_sets == 4
    assert cache.num_ways == 2


def test_miss_then_hit():
    cache, mem = small_cache()
    first = cache.access(load(0x1000, cycle=0))
    assert first == 10 + 100  # lookup + backing latency
    assert len(mem.accesses) == 1
    second = cache.access(load(0x1000, cycle=500))
    assert second == 510  # hit latency only
    assert len(mem.accesses) == 1
    assert cache.stats.hits["non_replay"] == 1
    assert cache.stats.misses["non_replay"] == 1


def test_hit_on_inflight_fill_waits_for_data():
    cache, _ = small_cache()
    done1 = cache.access(load(0x1000, cycle=0))
    # Second access 5 cycles later: tag matches but data not yet arrived.
    done2 = cache.access(load(0x1000, cycle=5))
    assert done2 == done1
    assert cache.stats.hits["non_replay"] == 1  # still counted as a hit


def test_mshr_merge_same_line_different_word():
    cache, mem = small_cache()
    cache.access(load(0x1000, cycle=0))
    # Evict nothing; access same line via a different word offset.
    done = cache.access(load(0x1008, cycle=1))
    assert done == 110
    assert len(mem.accesses) == 1  # merged, no duplicate fetch


def test_eviction_lru_within_set():
    cache, mem = small_cache()
    sets = cache.num_sets
    stride = sets * 64
    a, b, c = 0x0, stride, 2 * stride  # all map to set 0
    cache.access(load(a, cycle=0))
    cache.access(load(b, cycle=1000))
    cache.access(load(a, cycle=2000))  # touch a: b is now LRU
    cache.access(load(c, cycle=3000))  # evicts b
    assert cache.contains(a >> 6)
    assert cache.contains(c >> 6)
    assert not cache.contains(b >> 6)


def test_dirty_eviction_writes_back():
    cache, mem = small_cache()
    stride = cache.num_sets * 64
    cache.access(load(0x0, cycle=0, access_type=AccessType.STORE))
    cache.access(load(stride, cycle=1000))
    cache.access(load(2 * stride, cycle=2000))  # evicts the dirty line
    wb = [a for a in mem.accesses if a[2] is AccessType.WRITEBACK]
    assert len(wb) == 1
    assert cache.writebacks_issued == 1


def test_store_hit_marks_dirty():
    cache, _ = small_cache()
    cache.access(load(0x40, cycle=0))
    cache.access(load(0x40, cycle=500, access_type=AccessType.STORE))
    block = cache.block_for(0x40 >> 6)
    assert block.dirty


def test_ideal_translation_mode_responds_at_hit_latency():
    cache, mem = small_cache(ideal_translations=True)
    req = load(0x1000, cycle=0, access_type=AccessType.TRANSLATION,
               pt_level=1)
    done = cache.access(req)
    assert done == 10  # hit latency despite the miss
    assert len(mem.accesses) == 1  # bandwidth still consumed below


def test_ideal_mode_only_applies_to_matching_class():
    cache, _ = small_cache(ideal_translations=True)
    done = cache.access(load(0x2000, cycle=0))  # plain load
    assert done == 110


def test_ideal_replay_mode():
    cache, _ = small_cache(ideal_replays=True)
    done = cache.access(load(0x3000, cycle=0, is_replay=True))
    assert done == 10


def test_issue_prefetch_fills_cache():
    cache, mem = small_cache()
    done = cache.issue_prefetch(0x5000 >> 6, cycle=0)
    assert done == 110
    assert cache.contains(0x5000 >> 6)
    assert cache.stats.prefetch_fills == 1


def test_issue_prefetch_skips_resident_line():
    cache, mem = small_cache()
    cache.access(load(0x5000, cycle=0))
    n = len(mem.accesses)
    cache.issue_prefetch(0x5000 >> 6, cycle=10)
    assert len(mem.accesses) == n


def test_demand_hit_on_prefetch_counts_useful():
    cache, _ = small_cache()
    cache.issue_prefetch(0x5000 >> 6, cycle=0)
    cache.access(load(0x5000, cycle=500))
    assert cache.stats.prefetch_useful == 1


def test_evict_priority_prefetch_is_first_victim():
    cache, _ = small_cache()
    stride = cache.num_sets * 64
    cache.access(load(0x0, cycle=0))
    cache.issue_prefetch(stride >> 6, cycle=100, evict_priority=True)
    # Set 0 is now full; next fill should evict the demoted prefetch even
    # though it is the most recently touched line.
    cache.access(load(2 * stride, cycle=1000))
    assert cache.contains(0)
    assert not cache.contains(stride >> 6)


def test_dead_on_hit_block_stays_victim_after_consumption():
    cache, _ = small_cache()
    stride = cache.num_sets * 64
    cache.issue_prefetch(0x0, cycle=0, evict_priority=True)
    cache.access(load(0x0, cycle=500))           # consume (LRU-promotes)
    cache.access(load(stride, cycle=1000))       # fill the other way
    cache.access(load(2 * stride, cycle=2000))   # must evict the dead block
    assert not cache.contains(0)
    assert cache.contains(stride >> 6)


def test_leaf_translation_hit_callback():
    cache, _ = small_cache()
    seen = []
    cache.on_leaf_translation_hit = lambda req, cycle: seen.append(cycle)
    req = load(0x1000, cycle=0, access_type=AccessType.TRANSLATION,
               pt_level=1, replay_line_addr=0x77)
    cache.access(req)                       # miss: no callback
    cache.access(load(0x1000, cycle=500,
                      access_type=AccessType.TRANSLATION, pt_level=1))
    assert seen == [510]


def test_leaf_stats_tracked_separately():
    cache, _ = small_cache()
    cache.access(load(0x1000, cycle=0, access_type=AccessType.TRANSLATION,
                      pt_level=1))
    cache.access(load(0x2000, cycle=0, access_type=AccessType.TRANSLATION,
                      pt_level=3))
    assert cache.stats.leaf_accesses == 1
    assert cache.stats.leaf_misses == 1


def test_reset_stats_preserves_contents():
    cache, _ = small_cache()
    cache.access(load(0x1000, cycle=0))
    cache.reset_stats()
    assert cache.stats.total_misses() == 0
    assert cache.contains(0x1000 >> 6)


def test_occupancy_by_category():
    cache, _ = small_cache()
    cache.access(load(0x1000, cycle=0))
    cache.access(load(0x2040, cycle=0, is_replay=True))
    cache.access(load(0x3080, cycle=0, access_type=AccessType.TRANSLATION,
                      pt_level=1))
    occ = cache.occupancy_by_category()
    assert occ == {"translation": 1, "replay": 1, "other": 1}


def test_writeback_miss_installs_line():
    cache, mem = small_cache()
    cache.access(load(0x9000, cycle=0, access_type=AccessType.WRITEBACK))
    assert cache.contains(0x9000 >> 6)
    assert cache.block_for(0x9000 >> 6).dirty
    assert not mem.accesses  # absorbed, not forwarded


def test_post_throttle_request_to_throttling_line_still_merges():
    """Regression for the MSHR merge-loss bug: when a full MSHR delays a
    new miss, the earliest in-flight entry used to be deleted, so a
    later request to that line got the bare hit latency instead of
    waiting for (merging with) its in-flight fill."""
    cache, mem = small_cache()
    first = 0x10000
    # Saturate the 8-entry MSHR; every fill lands at cycle 110.
    for i in range(8):
        cache.access(load(first + i * 0x1000, cycle=0))
    n_mem = len(mem.accesses)
    # The 9th miss is admission-throttled until the earliest fill (110).
    cache.access(load(0x50000, cycle=0))
    assert cache.mshr.admission_stall_cycles > 0
    # A request to the throttling line while its fill is in flight must
    # complete at the fill time (110), not the tag-hit latency (60).
    done = cache.access(load(first, cycle=50))
    assert done == 110
    assert len(mem.accesses) == n_mem + 1  # only the throttled miss went down


class _InvalidateRecorder:
    """Stand-in upper level that accepts every back-invalidation."""

    def invalidate(self, line_addr):
        return True


def test_reset_stats_clears_congestion_counters():
    """Regression for the warmup stat leak: admission stalls, bypassed
    fills and back-invalidations from the warmup phase must not leak
    into ROI-reported numbers."""
    cache, _ = small_cache()
    cache.back_invalidate_targets.append(_InvalidateRecorder())
    cache.bypass_predicate = lambda req: req.line_addr == (0x9999 << 6) >> 6
    # All of these map to set 0 (stride = 0x1000 lines x 64B): 8 distinct
    # lines overflow the 2 ways (back-invalidations) and fill the MSHR.
    for i in range(8):
        cache.access(load(0x10000 + i * 0x1000, cycle=0))
    cache.access(load(0x50000, cycle=0))        # admission-throttled
    cache.access(load(0x9999 << 6, cycle=5000))  # bypassed fill
    assert cache.mshr.admission_stall_cycles > 0
    assert cache.back_invalidations > 0
    assert cache.fills_bypassed == 1
    cache.reset_stats()
    assert cache.mshr.admission_stall_cycles == 0
    assert cache.back_invalidations == 0
    assert cache.fills_bypassed == 0
    assert cache.mshr.peak_occupancy == 0
