"""Tests for ATP and TEMPO (the paper's prefetchers)."""

import pytest

from repro.cache.cache import Cache
from repro.memsys.dram import DRAM
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import CacheConfig, DRAMConfig
from repro.prefetch.atp import ATPPrefetcher
from repro.prefetch.tempo import TEMPOPrefetcher


def build_two_level():
    dram = DRAM(DRAMConfig())
    llc = Cache(CacheConfig("LLC", 64 * 64, 4, 20), dram)
    l2c = Cache(CacheConfig("L2C", 32 * 64, 4, 10), llc)
    return l2c, llc, dram


def leaf_read(addr, replay_line, cycle=0):
    return MemoryRequest(address=addr, cycle=cycle,
                         access_type=AccessType.TRANSLATION, pt_level=1,
                         replay_line_addr=replay_line)


def test_atp_prefetches_on_l2c_translation_hit():
    l2c, llc, dram = build_two_level()
    atp = ATPPrefetcher(l2c, llc)
    atp.attach()
    l2c.access(leaf_read(0x1000, replay_line=0x500, cycle=0))  # fill
    l2c.access(leaf_read(0x1000, replay_line=0x501, cycle=1000))  # hit
    assert atp.triggered_l2c == 1
    assert l2c.contains(0x501)


def test_atp_prefetches_on_llc_translation_hit():
    l2c, llc, dram = build_two_level()
    atp = ATPPrefetcher(l2c, llc)
    atp.attach()
    llc.access(leaf_read(0x1000, replay_line=0x500, cycle=0))
    llc.access(leaf_read(0x1000, replay_line=0x502, cycle=1000))
    assert atp.triggered_llc == 1
    assert llc.contains(0x502)
    assert not l2c.contains(0x502)  # LLC-hit prefetch fills the LLC only


def test_atp_replay_demand_merges_with_prefetch():
    """The replay demand arriving behind the prefetch must not refetch."""
    l2c, llc, dram = build_two_level()
    atp = ATPPrefetcher(l2c, llc)
    atp.attach()
    l2c.access(leaf_read(0x1000, replay_line=0x500, cycle=0))
    l2c.access(leaf_read(0x1000, replay_line=0x600, cycle=1000))  # triggers
    n_dram = dram.accesses
    done = l2c.access(MemoryRequest(address=0x600 << 6, cycle=1020,
                                    is_replay=True))
    assert dram.accesses == n_dram  # merged / hit, no second DRAM trip
    # The demand waits for the prefetch fill, not a full fresh access.
    fresh = 1020 + 10 + 20 + dram.config.row_miss_latency
    assert done < fresh


def test_atp_prefetch_fill_has_eviction_priority():
    l2c, llc, dram = build_two_level()
    atp = ATPPrefetcher(l2c, llc)
    atp.attach()
    l2c.access(leaf_read(0x1000, replay_line=0x500, cycle=0))
    l2c.access(leaf_read(0x1000, replay_line=0x600, cycle=1000))
    block = l2c.block_for(0x600)
    assert block is not None
    assert block.dead_on_hit


def test_atp_skips_when_no_replay_line():
    l2c, llc, dram = build_two_level()
    atp = ATPPrefetcher(l2c, llc)
    atp.attach()
    req = MemoryRequest(address=0x1000, cycle=0,
                        access_type=AccessType.TRANSLATION, pt_level=1)
    l2c.access(req)
    l2c.access(MemoryRequest(address=0x1000, cycle=100,
                             access_type=AccessType.TRANSLATION, pt_level=1))
    assert atp.triggered == 0


def test_tempo_prefetches_on_dram_leaf_translation():
    l2c, llc, dram = build_two_level()
    tempo = TEMPOPrefetcher(dram, llc)
    tempo.attach()
    # A leaf translation that misses everywhere reaches DRAM.
    llc.access(leaf_read(0x2000, replay_line=0x700, cycle=0))
    assert tempo.triggered == 1
    assert llc.contains(0x700)


def test_tempo_ignores_data_and_upper_levels():
    l2c, llc, dram = build_two_level()
    tempo = TEMPOPrefetcher(dram, llc)
    tempo.attach()
    llc.access(MemoryRequest(address=0x3000, cycle=0))
    llc.access(MemoryRequest(address=0x4000, cycle=0,
                             access_type=AccessType.TRANSLATION, pt_level=4))
    assert tempo.triggered == 0


def test_atp_does_not_count_triggers_for_resident_lines():
    """Regression: triggered_* used to increment before the residency
    check in issue_prefetch, inflating trigger counts (and deflating the
    accuracy study's useful/triggered ratio) for already-resident lines."""
    l2c, llc, dram = build_two_level()
    atp = ATPPrefetcher(l2c, llc)
    atp.attach()
    l2c.access(leaf_read(0x1000, replay_line=0x500, cycle=0))      # fill
    l2c.access(MemoryRequest(address=0x500 << 6, cycle=500))       # resident
    l2c.access(leaf_read(0x1000, replay_line=0x500, cycle=1000))   # hit
    assert atp.triggered_l2c == 0
    llc.access(leaf_read(0x8000, replay_line=0x700, cycle=0))
    llc.access(MemoryRequest(address=0x700 << 6, cycle=500))
    llc.access(leaf_read(0x8000, replay_line=0x700, cycle=1000))
    assert atp.triggered_llc == 0


def test_llc_translation_miss_falls_through_to_tempo():
    """The paper's division of labour: ATP covers leaf translations that
    hit on-chip; a leaf PTE read missing the whole hierarchy reaches the
    memory controller, where TEMPO (and only TEMPO) issues the replay
    line."""
    l2c, llc, dram = build_two_level()
    atp = ATPPrefetcher(l2c, llc)
    atp.attach()
    tempo = TEMPOPrefetcher(dram, llc)
    tempo.attach()
    # Cold leaf translation: misses L2C and LLC, serviced by DRAM.
    l2c.access(leaf_read(0x9000, replay_line=0x800, cycle=0))
    assert atp.triggered == 0
    assert tempo.triggered == 1
    assert llc.contains(0x800)
    # Warm leaf translation to the same PTE line: ATP takes over and
    # TEMPO never sees it (it no longer reaches DRAM).
    n_dram = dram.accesses
    l2c.access(leaf_read(0x9000, replay_line=0x900, cycle=5000))
    assert atp.triggered == 1
    assert tempo.triggered == 1
    assert dram.accesses > n_dram  # only the new replay line's fetch


def test_tempo_skips_resident_replay_line():
    """Regression: TEMPO used to count a trigger (and issue a redundant
    LLC access) for replay lines already resident in the LLC; ATP has
    always suppressed these, and the accuracy study compares the two on
    the same useful/triggered footing."""
    l2c, llc, dram = build_two_level()
    tempo = TEMPOPrefetcher(dram, llc)
    tempo.attach()
    llc.access(MemoryRequest(address=0x700 << 6, cycle=0))  # make resident
    assert llc.contains(0x700)
    llc.access(leaf_read(0x2000, replay_line=0x700, cycle=1000))
    assert tempo.triggered == 0


def test_tempo_fallback_inside_full_hierarchy():
    """End to end: with both prefetchers enabled, a cold page walk's leaf
    PTE read misses the whole hierarchy and TEMPO triggers at DRAM."""
    from repro.params import EnhancementConfig, default_config
    from repro.uncore.hierarchy import MemoryHierarchy
    from repro.vm.address import make_va

    cfg = default_config(16).with_(
        enhancements=EnhancementConfig.full())
    h = MemoryHierarchy(cfg)
    h.load(make_va([1, 2, 3, 4, 5]), cycle=0)  # cold: leaf PTE from DRAM
    assert h.tempo is not None
    assert h.tempo.triggered >= 1
    before = h.tempo.triggered
    # Same page again: every PTE line is now cached on-chip, so the
    # fallback stays quiet.
    h.load(make_va([1, 2, 3, 4, 5], 64), cycle=10_000)
    assert h.tempo.triggered == before
