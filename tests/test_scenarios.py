"""Tests for the ``repro.scenario/v1`` DSL and traffic-mix engine.

Covers the checked-in library, strict parsing, the parse -> compile ->
re-emit round trip, the bit-identical single-workload contract, the
scenario-aware RunKey, and golden JSONL results for one ``SYN-*`` and
one ``RL-*`` document (regenerate with
``python tests/data/scenarios/regen.py`` after an intentional
behavioural change).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.experiments.parallel import RunKey
from repro.scenarios import (SCENARIO_SCHEMA, ScenarioError, compile_scenario,
                             emit_scenario, library_paths, list_scenarios,
                             load_scenario, load_scenario_file,
                             parse_scenario, run_scenario, validate_scenario,
                             write_results)
from repro.workloads.registry import make_trace

DATA_DIR = Path(__file__).resolve().parent / "data" / "scenarios"

#: Pinned geometry of the golden runs (mirrored in regen.py).
GOLDEN_INSTRUCTIONS = 4_000
GOLDEN_WARMUP = 500


def minimal(name="t-mix", **extra):
    doc = {"schema": SCENARIO_SCHEMA, "name": name,
           "mix": {"pr": 0.5, "cc": 0.5}}
    doc.update(extra)
    return doc


# ----------------------------------------------------------------------
# Library completeness
# ----------------------------------------------------------------------
def test_library_has_required_families():
    names = list_scenarios()
    syn = [n for n in names if n.startswith("SYN-")]
    rl = [n for n in names if n.startswith("RL-")]
    assert len(syn) >= 3, names
    assert len(rl) >= 2, names


def test_every_library_document_validates():
    for name in list_scenarios():
        doc = load_scenario(name)
        validate_scenario(doc)
        assert doc.family in ("SYN", "RL")


def test_library_names_match_filename_stems():
    for name, path in library_paths().items():
        assert load_scenario_file(path).name == name


def test_rl02_carries_config_override():
    doc = load_scenario("RL-02-PHASED-PIPELINE")
    assert doc.config == {"llc_inclusion": "inclusive"}
    assert len(doc.phases) == 3


# ----------------------------------------------------------------------
# Parsing: strictness
# ----------------------------------------------------------------------
def test_parse_minimal_document():
    doc = parse_scenario(minimal())
    assert doc.name == "t-mix" and doc.seed == 1
    assert len(doc.phases) == 1
    assert doc.mix_summary() == {"cc": 0.5, "pr": 0.5}


@pytest.mark.parametrize("mutate,match", [
    (lambda d: d.pop("schema"), "schema"),
    (lambda d: d.update(schema="repro.scenario/v2"), "schema"),
    (lambda d: d.pop("name"), "name"),
    (lambda d: d.update(name="pr"), "shadows"),
    (lambda d: d.update(bogus=1), "unknown keys"),
    (lambda d: d.update(seed=-1), "seed"),
    (lambda d: d.update(instructions=0), "instructions"),
    (lambda d: d.update(mix={}), "mix"),
    (lambda d: d.update(mix={"gcc": 1.0}), "not a known"),
    (lambda d: d.update(mix={"pr": 0.0}), "positive"),
    (lambda d: d.update(mix={"x": {"weight": 1.0}}), "pattern"),
    (lambda d: d.update(mix={"x": {"weight": 1.0,
                                   "pattern": {"bogus_knob": 3}}}),
     "bogus_knob"),
    (lambda d: d.update(arrival={"kind": "fractal"}), "fractal"),
    (lambda d: d.update(arrival={"kind": "uniform", "quantum": 0}),
     "quantum"),
    (lambda d: d.update(phases=[{"mix": {"pr": 1.0}}]), "not both"),
    (lambda d: d.update(config=[1, 2]), "config"),
])
def test_parse_rejects_malformed_documents(mutate, match):
    doc = minimal()
    mutate(doc)
    with pytest.raises(ScenarioError, match=match):
        parse_scenario(doc)


def test_phases_and_mix_are_exclusive_but_phases_alone_work():
    doc = parse_scenario({
        "schema": SCENARIO_SCHEMA, "name": "t-phased",
        "phases": [{"weight": 1.0, "mix": {"pr": 1.0}},
                   {"weight": 2.0, "mix": {"cc": 1.0},
                    "arrival": {"kind": "bursty"}}]})
    assert len(doc.phases) == 2
    assert doc.phases[0].arrival.kind == "uniform"  # doc default
    assert doc.phases[1].arrival.kind == "bursty"   # per-phase override


# ----------------------------------------------------------------------
# Round trip and identity
# ----------------------------------------------------------------------
def test_canonical_round_trip_preserves_digest():
    for name in list_scenarios():
        doc = load_scenario(name)
        reparsed = parse_scenario(doc.canonical())
        assert reparsed.digest == doc.digest, name
        assert reparsed == doc, name


def test_emit_parse_round_trip(tmp_path):
    doc = load_scenario("SYN-03-REPLAY-DEAD-STREAMS")
    out = tmp_path / "copy.json"
    emit_scenario(doc, out)
    again = load_scenario_file(out)
    assert again.digest == doc.digest


def test_digest_tracks_content():
    a = parse_scenario(minimal())
    b = parse_scenario(minimal(seed=2))
    c = parse_scenario(minimal(description="same mix, new words"))
    assert a.digest != b.digest
    assert a.digest != c.digest  # description is part of the document


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def test_compile_is_deterministic():
    doc = load_scenario("RL-01-GRAPH-SOUP")
    t1 = compile_scenario(doc, 5_000)
    t2 = compile_scenario(doc, 5_000)
    assert len(t1) == 5_000
    assert np.array_equal(t1.addrs, t2.addrs)
    assert np.array_equal(t1.ips, t2.ips)
    assert np.array_equal(t1.kinds, t2.kinds)


def test_compile_apportions_phases():
    doc = load_scenario("SYN-02-PTE-REUSE-CLIFF")
    trace = compile_scenario(doc, 6_000)
    assert len(trace) == 6_000


def test_single_workload_scenario_matches_direct_trace():
    doc = parse_scenario({
        "schema": SCENARIO_SCHEMA, "name": "t-pr-only", "seed": 5,
        "mix": {"pr": 1.0}})
    mixed = compile_scenario(doc, 7_000, seed=5)
    direct = make_trace("pr", 7_000, seed=5)
    assert np.array_equal(mixed.ips, direct.ips)
    assert np.array_equal(mixed.kinds, direct.kinds)
    assert np.array_equal(mixed.addrs, direct.addrs)
    assert np.array_equal(mixed.deps, direct.deps)


def test_single_workload_scenario_matches_direct_run():
    """The end-to-end contract: simulating a single-workload scenario is
    bit-identical to ``api.run`` on the benchmark itself."""
    doc = parse_scenario({
        "schema": SCENARIO_SCHEMA, "name": "t-pr-run", "seed": 5,
        "mix": {"pr": 1.0}})
    via_scenario = run_scenario(doc, instructions=4_000, warmup=500)
    direct = api.run("pr", instructions=4_000, warmup=500, seed=5)
    assert via_scenario.cycles == direct.cycles
    assert via_scenario.summary.metrics == pytest.approx(direct.summary())


# ----------------------------------------------------------------------
# RunKey / execution
# ----------------------------------------------------------------------
def test_runkey_scenario_digest_invalidates_on_edit():
    cfg = api.build_config()
    plain = RunKey(benchmark="pr", config=cfg)
    assert plain.scenario is None
    a = RunKey(benchmark="x", config=cfg, scenario="d" * 64)
    b = RunKey(benchmark="x", config=cfg, scenario="e" * 64)
    assert a.digest != b.digest and a != b
    # Plain-benchmark digests are computed without the scenario field,
    # so existing cache entries stay valid.
    legacy_blob = {"benchmark": "pr", "config": plain.config_hash,
                   "seed": 1, "instructions": plain.instructions,
                   "warmup": plain.warmup, "scale": plain.scale}
    import hashlib
    expect = hashlib.sha256(
        json.dumps(legacy_blob, sort_keys=True).encode()).hexdigest()
    assert plain.digest == expect


def test_run_scenario_applies_config_overrides():
    result = run_scenario("RL-02-PHASED-PIPELINE", instructions=3_000,
                          warmup=500)
    assert result.key.config.llc_inclusion == "inclusive"
    assert result.key.scenario == result.doc.digest


def test_run_scenario_rejects_bad_override():
    doc = parse_scenario(minimal(name="t-bad-cfg",
                                 config={"no_such_field": 1}))
    with pytest.raises(ScenarioError, match="config override"):
        run_scenario(doc, instructions=2_000, warmup=200)


def test_run_scenario_unknown_name():
    with pytest.raises(ScenarioError, match="unknown scenario"):
        run_scenario("NO-SUCH-SCENARIO")


def test_adhoc_scenario_resolves_via_make_trace():
    doc = parse_scenario(minimal(name="t-adhoc-resolve"))
    from repro.scenarios import register_scenario
    register_scenario(doc)
    trace = make_trace("t-adhoc-resolve", 2_000, scale=16, seed=1)
    assert len(trace) == 2_000


def test_make_trace_unknown_name_mentions_scenarios():
    with pytest.raises(ValueError, match="unknown benchmark or scenario"):
        make_trace("definitely-not-a-thing", 1_000)


def test_scenario_manifest_block():
    from repro.obs.manifest import build_manifest
    cfg = api.build_config()
    plain = build_manifest("pr", cfg, instructions=1_000, warmup=100,
                           scale=16, seed=1)
    assert "scenario" not in plain
    doc = load_scenario("SYN-01-STLB-THRASH")
    observed = build_manifest(doc.name, cfg, instructions=1_000,
                              warmup=100, scale=16, seed=1)
    assert observed["scenario"]["digest"] == doc.digest
    assert observed["scenario"]["family"] == "SYN"


# ----------------------------------------------------------------------
# Golden JSONL results
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["SYN-01-STLB-THRASH", "RL-01-GRAPH-SOUP"])
def test_golden_scenario_results(name):
    golden_path = DATA_DIR / f"{name}.golden.json"
    assert golden_path.exists(), (
        f"missing golden fixture {golden_path}; run "
        f"python tests/data/scenarios/regen.py")
    golden = json.loads(golden_path.read_text())
    result = run_scenario(name, instructions=GOLDEN_INSTRUCTIONS,
                          warmup=GOLDEN_WARMUP)
    record = result.jsonl_record(timestamp=False)
    assert record == golden


def test_write_results_appends_jsonl(tmp_path):
    result = run_scenario("SYN-01-STLB-THRASH",
                          instructions=GOLDEN_INSTRUCTIONS,
                          warmup=GOLDEN_WARMUP)
    out = tmp_path / "r.jsonl"
    write_results([result], out)
    write_results([result], out)
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert len(lines) == 2
    assert all(r["schema"] == "repro.scenario-result/v1" for r in lines)
    assert all("created_utc" in r for r in lines)
