"""Golden-number regression tests.

These pin the simulator's *deterministic* outputs for fixed seeds and
configurations, with loose tolerances, so that accidental behavioural
changes (a policy update, a latency tweak, a workload recalibration)
surface immediately instead of silently shifting every figure.

When a change is intentional, update the golden values and note it in
the commit.
"""

import pytest

from repro.core.rob import StallCategory
from repro.experiments.runner import run_benchmark
from repro.params import EnhancementConfig, default_config

KW = dict(instructions=12_000, warmup=3_000, seed=1)

#: Benchmark -> (metric accessor description, expected, rel tolerance).
GOLDEN_BASELINE = {
    "xalancbmk": {"stlb_mpki": (5.9, 0.25), "ipc": (1.18, 0.3)},
    "canneal": {"stlb_mpki": (19.3, 0.2), "ipc": (1.07, 0.3)},
    "pr": {"stlb_mpki": (85.4, 0.15), "ipc": (0.62, 0.3)},
}


@pytest.mark.parametrize("name", sorted(GOLDEN_BASELINE))
def test_baseline_golden_metrics(name):
    run = run_benchmark(name, **KW)
    golden = GOLDEN_BASELINE[name]
    assert run.stlb_mpki == pytest.approx(golden["stlb_mpki"][0],
                                          rel=golden["stlb_mpki"][1]), name
    assert run.ipc == pytest.approx(golden["ipc"][0],
                                    rel=golden["ipc"][1]), name


def test_simulation_is_deterministic():
    a = run_benchmark("pr", **KW)
    b = run_benchmark("pr", **KW)
    assert a.cycles == b.cycles
    assert a.summary() == b.summary()


def test_enhancement_stack_golden_direction():
    """The full stack's effect on canneal stays in its known band."""
    base = run_benchmark("canneal", **KW)
    cfg = default_config().with_(enhancements=EnhancementConfig.full())
    enh = run_benchmark("canneal", config=cfg, **KW)
    speedup = enh.speedup_over(base)
    assert 0.98 < speedup < 1.25


def test_stall_attribution_golden_shape():
    """pr: replay stalls dominate translation stalls by >= 5x."""
    run = run_benchmark("pr", **KW)
    replay = run.stall_cycles(StallCategory.REPLAY)
    translation = run.stall_cycles(StallCategory.TRANSLATION)
    assert replay > 5 * max(1, translation)
