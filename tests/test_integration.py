"""Integration tests: the paper's qualitative claims at reduced scale.

These are the load-bearing checks that the reproduced *mechanisms* behave
the way the paper says they do -- they use mid-size runs (a few seconds
total) and assert directions/shapes, not absolute numbers.
"""

import pytest

from repro.core.rob import StallCategory
from repro.experiments.runner import run_benchmark
from repro.params import EnhancementConfig, IdealConfig, default_config
from repro.workloads.registry import categorize

MID = dict(instructions=20_000, warmup=5_000)


@pytest.fixture(scope="module")
def baseline_pr():
    return run_benchmark("pr", **MID)


@pytest.fixture(scope="module")
def full_pr():
    cfg = default_config().with_(enhancements=EnhancementConfig.full())
    return run_benchmark("pr", config=cfg, **MID)


def test_stlb_mpki_category_bands():
    """Benchmarks land in their Table II Low/Medium/High bands."""
    for name in ("xalancbmk", "mcf", "pr"):
        r = run_benchmark(name, **MID)
        from repro.workloads.registry import benchmark
        assert categorize(r.stlb_mpki) == benchmark(name).category, name


def test_replay_mpki_tracks_stlb_mpki(baseline_pr):
    """Nearly every STLB miss produces an L2C/LLC-missing replay load
    (Table II: replay MPKI ~= STLB MPKI)."""
    r = baseline_pr
    assert r.cache_mpki("l2c", "replay") == pytest.approx(r.stlb_mpki,
                                                          rel=0.15)
    assert r.cache_mpki("llc", "replay") == pytest.approx(r.stlb_mpki,
                                                          rel=0.2)


def test_replay_blocks_are_dead(baseline_pr):
    """Fig 7: replay blocks see (almost) no reuse -> recall > 50."""
    tracker = baseline_pr.hierarchy.llc.recall_replay
    tracker.flush()
    if tracker.samples >= 20:
        assert tracker.fraction_within(50) < 0.5


def test_translation_recall_is_short(baseline_pr):
    """Fig 5: a sizeable fraction of evicted translations would have been
    recalled within ~50 unique set accesses."""
    tracker = baseline_pr.hierarchy.llc.recall_translation
    tracker.flush()
    if tracker.samples >= 20:
        assert tracker.fraction_within(50) > 0.1


def test_tship_reduces_translation_mpki(baseline_pr):
    """Fig 12: T-SHiP cuts the leaf-translation MPKI at the LLC."""
    cfg = default_config().with_(enhancements=EnhancementConfig(
        t_drrip=True, t_ship=True, newsign=True))
    enhanced = run_benchmark("pr", config=cfg, **MID)
    assert enhanced.leaf_mpki("llc") < baseline_pr.leaf_mpki("llc")


def test_full_stack_reduces_translation_stalls(baseline_pr, full_pr):
    """Fig 16: the enhancements cut STLB-miss-caused ROB stalls."""
    base = baseline_pr.stall_cycles(StallCategory.TRANSLATION)
    enh = full_pr.stall_cycles(StallCategory.TRANSLATION)
    assert enh < base


def test_enhancements_never_lose_badly():
    """Fig 14: the full stack helps memory-intensive benchmarks and never
    catastrophically hurts."""
    import math
    speedups = []
    for name in ("canneal", "mcf", "tc"):
        base = run_benchmark(name, **MID)
        cfg = default_config().with_(
            enhancements=EnhancementConfig.full())
        enh = run_benchmark(name, config=cfg, **MID)
        speedups.append(enh.speedup_over(base))
    gmean = math.prod(speedups) ** (1 / len(speedups))
    assert gmean > 1.0
    assert min(speedups) > 0.93


def test_ideal_caches_upper_bound(baseline_pr):
    """Fig 2: the ideal-TR machine beats the real one, and TR >= T."""
    cfg_t = default_config().with_(
        ideal=IdealConfig(llc_translations=True, l2c_translations=True))
    cfg_tr = default_config().with_(
        ideal=IdealConfig(llc_translations=True, llc_replays=True,
                          l2c_translations=True, l2c_replays=True))
    ideal_t = run_benchmark("pr", config=cfg_t, **MID)
    ideal_tr = run_benchmark("pr", config=cfg_tr, **MID)
    assert ideal_tr.speedup_over(baseline_pr) > 1.02
    assert ideal_tr.cycles <= ideal_t.cycles


def test_atp_converts_llc_replay_misses(full_pr, baseline_pr):
    """ATP turns replay LLC misses into hits/merges (Fig 13)."""
    assert (full_pr.cache_mpki("llc", "replay")
            < baseline_pr.cache_mpki("llc", "replay"))
    assert full_pr.hierarchy.atp.triggered > 0


def test_translation_hit_rate_near_one_with_enhancements(full_pr):
    """Section V: >98% of leaf translations hit on-chip with T-*."""
    assert full_pr.hierarchy.leaf_translation_hit_rate() > 0.95


def test_fig10_misconfiguration_is_worse_than_proposal():
    """Inserting replays at RRPV=0 must underperform the proper T-config
    (the point of Fig 10)."""
    proper_cfg = default_config().with_(enhancements=EnhancementConfig(
        t_drrip=True, t_ship=True, newsign=True))
    wrong_cfg = default_config().with_(enhancements=EnhancementConfig(
        t_drrip=True, t_ship=True, newsign=True, replay_rrpv0=True))
    proper = run_benchmark("pr", config=proper_cfg, **MID)
    wrong = run_benchmark("pr", config=wrong_cfg, **MID)
    assert wrong.cycles >= proper.cycles
