"""Tests for the decorator-based figure registry."""

import pathlib
import re

import pytest

from repro.experiments import registry

BENCH_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


def test_names_natural_sort():
    names = registry.names()
    assert names.index("fig2") < names.index("fig10")
    assert names.index("fig21") < names.index("table2")
    assert names.index("table2") < names.index("ablation")


def test_specs_resolve_and_have_titles():
    for spec in registry.specs():
        assert callable(spec.fn)
        assert spec.title, spec.name
        assert spec.source.startswith("repro.experiments."), spec.name


def test_get_unknown_name_lists_known():
    with pytest.raises(KeyError, match="fig14"):
        registry.get("nope")


def test_duplicate_registration_raises():
    @registry.figure("_dup_probe")
    def probe():
        """Probe."""

    try:
        with pytest.raises(ValueError, match="registered twice"):
            @registry.figure("_dup_probe")
            def probe2():
                """Probe again."""
    finally:
        del registry._REGISTRY["_dup_probe"]


def test_paper_vs_study_split():
    assert registry.get("fig14").paper is True
    assert registry.get("table2").paper is True
    assert registry.get("accuracy").paper is False
    assert registry.get("psc").paper is False


def test_takes_benchmarks_flag():
    # The SMT/multicore harnesses take workload mixes, not benchmark lists.
    assert registry.get("fig17").takes_benchmarks is False
    assert registry.get("multicore").takes_benchmarks is False
    assert registry.get("fig14").takes_benchmarks is True


def test_benchmark_suite_cannot_drift():
    """Every ``benchmarks/test_figNN_*.py`` must have a registered figure
    and vice versa -- the registry is the single source of truth."""
    suite = set()
    for path in BENCH_DIR.glob("test_fig*.py"):
        match = re.match(r"test_fig0*(\d+)_", path.name)
        assert match, path.name
        suite.add(f"fig{int(match.group(1))}")
    registered = {n for n in registry.names() if re.fullmatch(r"fig\d+", n)}
    assert suite == registered


def test_title_defaults_to_docstring_first_line():
    @registry.figure("_title_probe")
    def probe():
        """First line is the title.

        Not this one.
        """

    try:
        assert registry.get("_title_probe").title == \
            "First line is the title."
    finally:
        del registry._REGISTRY["_title_probe"]
