"""Tests for configuration (Table I) and scaling."""

import pytest

from repro.params import (CacheConfig, DEFAULT_SCALE, EnhancementConfig,
                          IdealConfig, LINE_SIZE, PTES_PER_LINE, SimConfig,
                          TLBConfig, canonical_policy, default_config,
                          paper_config)


def test_paper_config_matches_table1():
    cfg = paper_config()
    assert cfg.core.rob_entries == 352
    assert cfg.core.dispatch_width == 6
    assert cfg.core.retire_width == 4
    assert cfg.dtlb.entries == 64 and cfg.dtlb.ways == 4
    assert cfg.stlb.entries == 2048 and cfg.stlb.ways == 16
    assert cfg.stlb.latency == 8
    assert cfg.l1d.size_bytes == 48 * 1024 and cfg.l1d.ways == 12
    assert cfg.l2c.size_bytes == 512 * 1024 and cfg.l2c.replacement == "drrip"
    assert cfg.llc.size_bytes == 2 * 1024 * 1024 and cfg.llc.replacement == "ship"
    assert cfg.psc.pscl5_entries == 2
    assert cfg.psc.pscl2_entries == 32


def test_cache_geometry():
    c = CacheConfig("X", 64 * 1024, 8, 10)
    assert c.num_sets == 64 * 1024 // (LINE_SIZE * 8)


def test_cache_scaling_preserves_ways():
    c = CacheConfig("X", 512 * 1024, 8, 10)
    s = c.scaled(16)
    assert s.size_bytes == 32 * 1024
    assert s.ways == 8
    assert s.latency == c.latency


def test_cache_scaling_floor():
    c = CacheConfig("X", 1024, 8, 10)
    s = c.scaled(1000)
    assert s.num_sets >= 1


def test_tlb_scaling():
    t = TLBConfig("STLB", 2048, 16, 8)
    s = t.scaled(16)
    assert s.entries == 128
    assert s.num_sets == 8


def test_default_config_scales_structures_under_study():
    cfg = default_config()
    paper = paper_config()
    assert cfg.stlb.entries == paper.stlb.entries // DEFAULT_SCALE
    assert cfg.l2c.size_bytes == paper.l2c.size_bytes // DEFAULT_SCALE
    assert cfg.llc.size_bytes == paper.llc.size_bytes // DEFAULT_SCALE
    # L1D scales gently (see the rationale in params.py).
    assert cfg.l1d.size_bytes == paper.l1d.size_bytes // (DEFAULT_SCALE // 4)


def test_with_returns_new_config():
    cfg = default_config()
    cfg2 = cfg.with_(l2c_prefetcher="spp")
    assert cfg2.l2c_prefetcher == "spp"
    assert cfg.l2c_prefetcher == "none"


def test_enhancement_presets():
    assert not any(vars(EnhancementConfig.none()).values())
    full = EnhancementConfig.full()
    assert full.t_drrip and full.t_ship and full.newsign
    assert full.atp and full.tempo
    assert not full.replay_rrpv0  # the misconfiguration is never default


def test_ideal_any_enabled():
    assert not IdealConfig().any_enabled
    assert IdealConfig(l2c_replays=True).any_enabled


def test_ptes_per_line():
    assert PTES_PER_LINE == 8


# ----------------------------------------------------------------------
# Name normalisation and deprecation shims
# ----------------------------------------------------------------------

# Warn-once state is reset around every test by the autouse fixture in
# conftest.py (params.reset_deprecation_warnings), so each test observes
# first-touch behaviour without a local fixture.

def test_canonical_policy_passthrough():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        for name in ("lru", "srrip", "drrip", "ship", "hawkeye",
                     "t_drrip", "t_ship", "newsign_ship"):
            assert canonical_policy(name) == name


@pytest.mark.parametrize("old, new", [
    ("T-DRRIP", "t_drrip"),
    ("t-ship", "t_ship"),
    ("rand", "random"),
    ("tdrrip", "t_drrip"),
    ("thawkeye", "t_hawkeye"),
    ("new_sign_ship", "newsign_ship"),
    ("  LRU ", "lru"),
])
def test_canonical_policy_maps_deprecated_spellings(
                                                    old, new):
    with pytest.warns(DeprecationWarning):
        assert canonical_policy(old) == new


def test_canonical_policy_warns_once():
    import warnings

    with pytest.warns(DeprecationWarning):
        canonical_policy("T-DRRIP")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert canonical_policy("T-DRRIP") == "t_drrip"


def test_canonical_policy_unknown_passes_through():
    # The replacement registry reports unknown names with its own error.
    assert canonical_policy("plru") == "plru"


def test_enhancement_deprecated_kwargs():
    with pytest.warns(DeprecationWarning, match="t_llc"):
        enh = EnhancementConfig(t_llc=True)
    assert enh.t_ship is True
    with pytest.warns(DeprecationWarning, match="new_signatures"):
        enh = EnhancementConfig(new_signatures=True)
    assert enh.newsign is True


def test_enhancement_deprecated_attribute_shims():
    enh = EnhancementConfig(t_ship=True, newsign=False)
    with pytest.warns(DeprecationWarning):
        assert enh.t_llc is True
    with pytest.warns(DeprecationWarning):
        assert enh.new_signatures is False


def test_enhancement_unknown_flag_rejected():
    with pytest.raises(TypeError, match="frobnicate"):
        EnhancementConfig(frobnicate=True)


def test_make_policy_accepts_deprecated_spelling():
    from repro.cache.replacement import make_policy

    with pytest.warns(DeprecationWarning):
        policy = make_policy("T-DRRIP", num_sets=16, num_ways=4)
    assert policy.name == make_policy("t_drrip", num_sets=16,
                                      num_ways=4).name
