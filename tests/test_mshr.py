"""Tests for repro.memsys.mshr."""

import pytest

from repro.memsys.mshr import MSHR


def test_rejects_zero_entries():
    with pytest.raises(ValueError):
        MSHR(0)


def test_lookup_miss_returns_none():
    mshr = MSHR(4)
    assert mshr.lookup(0x10, now=0) is None


def test_merge_with_inflight_fill():
    mshr = MSHR(4)
    mshr.allocate(0x10, fill_cycle=100, now=0)
    assert mshr.lookup(0x10, now=50) == 100
    assert mshr.merges == 1


def test_completed_fill_does_not_merge():
    mshr = MSHR(4)
    mshr.allocate(0x10, fill_cycle=100, now=0)
    assert mshr.lookup(0x10, now=100) is None
    assert mshr.lookup(0x10, now=150) is None


def test_admission_free_when_not_full():
    mshr = MSHR(2)
    assert mshr.admission_delay(now=0) == 0
    mshr.allocate(0x1, 100, 0)
    assert mshr.admission_delay(now=0) == 0


def test_admission_delay_waits_for_earliest_fill():
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    # Full: the next miss waits until the earliest fill (100) completes.
    assert mshr.admission_delay(now=10) == 90
    assert mshr.admission_stall_cycles == 90


def test_admission_expires_completed_entries():
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    # At now=150 the first fill has completed: a slot is free.
    assert mshr.admission_delay(now=150) == 0


def test_prefetch_allocation_bypasses_capacity():
    mshr = MSHR(1)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate_prefetch(0x2, 120, 0)
    # Both fills visible for merging.
    assert mshr.lookup(0x2, now=10) == 120
    assert mshr.occupancy(10) == 2


def test_peak_occupancy_tracks_demand_allocations():
    mshr = MSHR(8)
    for i in range(5):
        mshr.allocate(i, 1000 + i, 0)
    assert mshr.peak_occupancy == 5


def test_occupancy_counts_only_pending(  ):
    mshr = MSHR(8)
    mshr.allocate(1, 50, 0)
    mshr.allocate(2, 150, 0)
    assert mshr.occupancy(100) == 1


def test_admission_delay_keeps_throttling_entry_mergeable():
    """Regression: admission throttling used to *pop* the earliest entry
    even while its fill was still in flight (earliest > now), so a later
    request to that line could no longer merge and re-issued a duplicate
    downstream access."""
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    assert mshr.admission_delay(now=10) == 90
    # 0x1's fill (cycle 100) is still in flight: it must keep merging.
    assert mshr.lookup(0x1, now=50) == 100
    assert mshr.merges == 1


def test_admission_throttling_entry_expires_lazily():
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    mshr.admission_delay(now=10)
    # Once its fill time passes, the entry retires as documented.
    assert mshr.lookup(0x1, now=150) is None
    assert mshr.admission_delay(now=150) == 0


def test_prefetch_allocation_updates_peak_occupancy():
    """Regression: prefetch fills count toward the bandwidth proxy."""
    mshr = MSHR(8)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate_prefetch(0x2, 120, 0)
    mshr.allocate_prefetch(0x3, 130, 0)
    assert mshr.peak_occupancy == 3
