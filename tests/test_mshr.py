"""Tests for repro.memsys.mshr."""

import pytest

from repro.memsys.mshr import MSHR


def test_rejects_zero_entries():
    with pytest.raises(ValueError):
        MSHR(0)


def test_lookup_miss_returns_none():
    mshr = MSHR(4)
    assert mshr.lookup(0x10, now=0) is None


def test_merge_with_inflight_fill():
    mshr = MSHR(4)
    mshr.allocate(0x10, fill_cycle=100, now=0)
    assert mshr.lookup(0x10, now=50) == 100
    assert mshr.merges == 1


def test_completed_fill_does_not_merge():
    mshr = MSHR(4)
    mshr.allocate(0x10, fill_cycle=100, now=0)
    assert mshr.lookup(0x10, now=100) is None
    assert mshr.lookup(0x10, now=150) is None


def test_admission_free_when_not_full():
    mshr = MSHR(2)
    assert mshr.admission_delay(now=0) == 0
    mshr.allocate(0x1, 100, 0)
    assert mshr.admission_delay(now=0) == 0


def test_admission_delay_waits_for_earliest_fill():
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    # Full: the next miss waits until the earliest fill (100) completes.
    assert mshr.admission_delay(now=10) == 90
    assert mshr.admission_stall_cycles == 90


def test_admission_expires_completed_entries():
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    # At now=150 the first fill has completed: a slot is free.
    assert mshr.admission_delay(now=150) == 0


def test_prefetch_allocation_bypasses_capacity():
    mshr = MSHR(1)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate_prefetch(0x2, 120, 0)
    # Both fills visible for merging.
    assert mshr.lookup(0x2, now=10) == 120
    assert mshr.occupancy(10) == 2


def test_peak_occupancy_tracks_demand_allocations():
    mshr = MSHR(8)
    for i in range(5):
        mshr.allocate(i, 1000 + i, 0)
    assert mshr.peak_occupancy == 5


def test_occupancy_counts_only_pending(  ):
    mshr = MSHR(8)
    mshr.allocate(1, 50, 0)
    mshr.allocate(2, 150, 0)
    assert mshr.occupancy(100) == 1


def test_admission_delay_keeps_throttling_entry_mergeable():
    """Regression: admission throttling used to *pop* the earliest entry
    even while its fill was still in flight (earliest > now), so a later
    request to that line could no longer merge and re-issued a duplicate
    downstream access."""
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    assert mshr.admission_delay(now=10) == 90
    # 0x1's fill (cycle 100) is still in flight: it must keep merging.
    assert mshr.lookup(0x1, now=50) == 100
    assert mshr.merges == 1


def test_admission_throttling_entry_expires_lazily():
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    mshr.admission_delay(now=10)
    # Once its fill time passes, the entry retires as documented.
    assert mshr.lookup(0x1, now=150) is None
    assert mshr.admission_delay(now=150) == 0


def test_prefetch_allocation_updates_peak_occupancy():
    """Regression: prefetch fills count toward the bandwidth proxy."""
    mshr = MSHR(8)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate_prefetch(0x2, 120, 0)
    mshr.allocate_prefetch(0x3, 130, 0)
    assert mshr.peak_occupancy == 3


def test_expiration_counter_balances_allocations():
    """Conservation law the runtime checker relies on:
    allocations - expirations == live entries, at every point."""
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    assert mshr.allocations - mshr.expirations == len(mshr._inflight)
    mshr.admission_delay(now=150)  # expires 0x1 (fill 100 <= 150)
    assert mshr.expirations == 1
    assert mshr.allocations - mshr.expirations == len(mshr._inflight)


def test_reallocation_of_stale_entry_counts_as_expiration():
    """A line can miss again after its previous fill completed but before
    anything expired the stale entry: the overwrite retires it."""
    mshr = MSHR(4)
    mshr.allocate(0x1, 100, 0)
    assert mshr.lookup(0x1, now=150) is None  # stale, never expired
    mshr.allocate(0x1, 300, 150)              # same line misses again
    assert mshr.allocations == 2
    assert mshr.expirations == 1
    assert mshr.allocations - mshr.expirations == len(mshr._inflight)


def test_peak_occupancy_ignores_stale_entries():
    """Regression: the peak used to be the raw table size, so lazily
    retained entries whose fills had long completed inflated the
    bandwidth proxy past the table's physical capacity."""
    mshr = MSHR(4)
    for i in range(4):
        mshr.allocate(i, 100 + i, 0)
    assert mshr.peak_occupancy == 4
    # Much later: all four fills completed long ago but were never
    # expired.  The new fill is the only one in flight.
    mshr.allocate(0x50, 1100, now=1000)
    assert mshr.peak_occupancy == 4  # not 5


def test_admission_delay_covers_multiple_completions():
    """Regression: with prefetch entries pushing the table past the
    demand capacity, waiting for only the earliest fill still left the
    table over-full; the wait must cover enough completions to free a
    genuine slot."""
    mshr = MSHR(2)
    mshr.allocate(0x1, 100, 0)
    mshr.allocate(0x2, 200, 0)
    mshr.allocate_prefetch(0x3, 300, 0)
    mshr.allocate_prefetch(0x4, 400, 0)
    # 4 entries, 2 demand slots: a slot frees only once the 3rd-earliest
    # fill (300) completes, not the earliest (100).
    assert mshr.admission_delay(now=10) == 290
    # None of the throttling entries were deleted: all still merge.
    assert mshr.lookup(0x1, now=50) == 100
    assert mshr.lookup(0x4, now=50) == 400
