"""Shape/plumbing tests for the remaining figure functions (tiny runs)."""

import pytest

from repro.experiments.figures import (fig2_ideal, fig4_translation_mpki,
                                       fig5_recall_translations,
                                       fig6_replay_mpki,
                                       fig7_recall_replays,
                                       fig8_prefetcher_replay_mpki,
                                       fig15_with_prefetchers,
                                       fig18_stlb_recall)
from repro.experiments.mixes import fig17_smt, multicore_study
from repro.experiments.sweeps import fig19_stlb_sensitivity

TINY = dict(instructions=2500, warmup=600, benchmarks=["pr"])


def test_fig2_modes_selectable():
    res = fig2_ideal(modes=["LLC(TR)"], **TINY)
    assert list(res.data["pr"]) == ["LLC(TR)"]
    assert res.data["pr"]["LLC(TR)"] > 0.5


def test_fig4_policy_subset():
    res = fig4_translation_mpki(policies=["lru", "ship"], **TINY)
    assert set(res.data["pr"]) == {"lru", "ship"}
    assert all(v >= 0 for v in res.data["pr"].values())


def test_fig6_policy_subset():
    res = fig6_replay_mpki(policies=["lru", "srrip"], **TINY)
    assert set(res.data["pr"]) == {"lru", "srrip"}


def test_fig5_and_fig7_sum_to_one():
    for fn in (fig5_recall_translations, fig7_recall_replays,
               fig18_stlb_recall):
        res = fn(**TINY)
        for trackers in res.data.values():
            for d in trackers.values():
                if d["samples"]:
                    assert d["cdf"][-1] == pytest.approx(1.0)


def test_fig8_prefetcher_subset():
    res = fig8_prefetcher_replay_mpki(prefetchers=["none", "spp"], **TINY)
    assert set(res.data["pr"]) == {"none", "spp"}


def test_fig15_prefetcher_subset():
    res = fig15_with_prefetchers(prefetchers=["spp"], **TINY)
    assert set(res.data["pr"]) == {"spp"}
    assert 0.5 < res.data["pr"]["spp"] < 2.0


def test_fig17_smt_runs_one_mix():
    res = fig17_smt(mixes=[("tc", "tc")], instructions=2500, warmup=600)
    assert "tc-tc" in res.data
    assert res.data["tc-tc"]["harmonic"] > 0.5


def test_multicore_study_runs_one_mix():
    res = multicore_study(mixes=[("tc", "pr")], instructions=2000,
                          warmup=500)
    assert res.data["gmean"] > 0.5


def test_sweep_rows_have_gmean_column():
    res = fig19_stlb_sensitivity(points=(2048,), **TINY)
    assert res.headers[-1] == "gmean"
    assert len(res.rows[0]) == len(res.headers)
