"""Tests for counters, recall tracking and report formatting."""

import pytest

from repro.stats.counters import CacheStats, LevelDistribution
from repro.stats.recall import RECALL_BUCKETS, RecallTracker
from repro.stats.report import format_table, geometric_mean, harmonic_mean


# -- CacheStats ---------------------------------------------------------
def test_cache_stats_mpki():
    s = CacheStats("L2C")
    for _ in range(5):
        s.record("replay", hit=False)
    s.record("replay", hit=True)
    assert s.mpki("replay", 1000) == 5.0
    assert s.hit_rate("replay") == pytest.approx(1 / 6)
    assert s.mpki("replay", 0) == 0.0


def test_cache_stats_leaf_tracking():
    s = CacheStats("LLC")
    s.record("translation", hit=False, leaf=True)
    s.record("translation", hit=True, leaf=False)
    assert s.leaf_misses == 1
    assert s.leaf_mpki(1000) == 1.0
    assert s.misses["translation"] == 1


def test_snapshot_roundtrip():
    s = CacheStats("X")
    s.record("non_replay", hit=True)
    snap = s.snapshot()
    assert snap["hits"]["non_replay"] == 1


def test_level_distribution_fractions():
    d = LevelDistribution()
    d.record("replay", "DRAM")
    d.record("replay", "DRAM")
    d.record("replay", "LLC")
    f = d.fractions("replay")
    assert f["DRAM"] == pytest.approx(2 / 3)
    assert f["L1D"] == 0.0
    assert d.fractions("translation")["DRAM"] == 0.0


# -- RecallTracker -------------------------------------------------------
def test_recall_exact_distance():
    t = RecallTracker("x")
    t.on_evict(0, line_addr=100)
    for line in (1, 2, 3):
        t.on_access(0, line)
    t.on_access(0, 100)  # recall at distance 3
    assert t.samples == 1
    assert t.histogram[0] == 1  # <=10 bucket


def test_recall_duplicate_accesses_counted_once():
    t = RecallTracker("x")
    t.on_evict(0, 100)
    for _ in range(20):
        t.on_access(0, 1)  # same line over and over: 1 unique
    t.on_access(0, 100)
    assert t.histogram[0] == 1


def test_recall_overflow_bucket():
    t = RecallTracker("x")
    t.on_evict(0, 100)
    for line in range(1, 60):
        t.on_access(0, line)
    t.on_access(0, 100)
    assert t.histogram[-1] == 1  # >50


def test_recall_per_set_isolation():
    t = RecallTracker("x")
    t.on_evict(0, 100)
    for line in range(1, 30):
        t.on_access(1, line)  # different set: not counted
    t.on_access(0, 100)
    assert t.histogram[0] == 1


def test_recall_flush_resolves_pending():
    t = RecallTracker("x")
    t.on_evict(0, 100)
    for line in range(1, 60):
        t.on_access(0, line)
    t.flush()
    assert t.samples == 1
    assert t.histogram[-1] == 1


def test_recall_cdf_monotone():
    t = RecallTracker("x")
    for i in range(30):
        t.on_evict(0, 1000 + i)
        for line in range(i):
            t.on_access(0, line)
        t.on_access(0, 1000 + i)
    cdf = t.cdf()
    assert all(a <= b + 1e-12 for a, b in zip(cdf, cdf[1:]))
    assert cdf[-1] == pytest.approx(1.0)


def test_fraction_within():
    t = RecallTracker("x")
    t.on_evict(0, 100)
    t.on_access(0, 1)
    t.on_access(0, 100)
    assert t.fraction_within(50) == 1.0
    assert t.fraction_within(10) == 1.0


def test_recall_bounded_pending():
    t = RecallTracker("x")
    for i in range(1000):
        t.on_evict(0, i)
    # Old pending evictions resolved rather than leaking memory.
    assert t.samples > 0


# -- report --------------------------------------------------------------
def test_format_table_alignment():
    out = format_table("Title", ["a", "bench"], [["x", 1.5], ["yy", 2]])
    lines = out.splitlines()
    assert lines[0] == "Title"
    assert "bench" in lines[2]
    assert "1.500" in out


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    with pytest.raises(ValueError):
        geometric_mean([1.0, -1.0])


def test_harmonic_mean():
    assert harmonic_mean([1.0, 1.0]) == pytest.approx(1.0)
    assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        harmonic_mean([0.0])
    assert harmonic_mean([]) == 0.0
