"""Property-based fuzzing of the full memory hierarchy and core.

Random short traces through every enhancement configuration: the
invariants are causality (completions after issues), accounting
consistency (hits + misses == accesses at every level), and
classification sanity (replay implies an STLB miss happened)."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.ooo_core import OOOCore
from repro.params import EnhancementConfig, default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, KIND_STORE, Trace

ENHANCEMENTS = [
    EnhancementConfig.none(),
    EnhancementConfig(t_drrip=True, t_ship=True, newsign=True),
    EnhancementConfig.full(),
]

RECORDS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),      # kind
              st.integers(min_value=0, max_value=63),     # page selector
              st.integers(min_value=0, max_value=63),     # offset word
              st.integers(min_value=0, max_value=15)),    # ip selector
    min_size=5, max_size=120)


def build_trace(records):
    n = len(records)
    ips = np.zeros(n, dtype=np.int64)
    kinds = np.zeros(n, dtype=np.int8)
    addrs = np.zeros(n, dtype=np.int64)
    for i, (kind, page, word, ip_sel) in enumerate(records):
        kinds[i] = (KIND_NONMEM, KIND_LOAD, KIND_STORE)[kind]
        ips[i] = 0x400000 + ip_sel * 4
        if kinds[i] != KIND_NONMEM:
            addrs[i] = make_va([7, 0, 0, page // 32, page % 32],
                               word * 64 % 4096)
    return Trace(ips, kinds, addrs)


@pytest.mark.parametrize("enh_idx", range(len(ENHANCEMENTS)))
@settings(max_examples=20, deadline=None)
@given(records=RECORDS)
def test_hierarchy_invariants_under_fuzz(enh_idx, records):
    cfg = default_config().with_(enhancements=ENHANCEMENTS[enh_idx])
    hierarchy = MemoryHierarchy(cfg)
    core = OOOCore(cfg, hierarchy)
    result = core.run(build_trace(records))

    assert result.cycles >= 1
    assert result.instructions == len(records)

    for cache in (hierarchy.l1d, hierarchy.l2c, hierarchy.llc):
        stats = cache.stats
        for category in set(stats.accesses) | set(stats.hits):
            assert (stats.hits[category] + stats.misses[category]
                    == stats.accesses[category]), (cache.name, category)
        assert stats.leaf_hits + stats.leaf_misses == stats.leaf_accesses

    mmu = hierarchy.mmu
    assert mmu.stlb.hits + mmu.stlb.misses == mmu.stlb.accesses
    assert mmu.walker.walks == mmu.stlb.misses  # every miss walks

    # Replay classification: replay data accesses at L1D equal walks
    # from loads (stores also walk but their data is buffered).
    assert hierarchy.l1d.stats.accesses["replay"] <= mmu.walker.walks


@settings(max_examples=10, deadline=None)
@given(records=RECORDS)
def test_fuzz_deterministic(records):
    cfg = default_config()
    trace = build_trace(records)
    a = OOOCore(cfg, MemoryHierarchy(cfg)).run(trace)
    b = OOOCore(cfg, MemoryHierarchy(cfg)).run(trace)
    assert a.cycles == b.cycles
