"""Removal tests for the shims retired under the api v2 major bump.

PR 4/5 demoted ``JourneyTracer`` and ``SimConfig.replace`` to warn-once
deprecation shims; v2 removes them.  A removed name must fail *loudly*
and name its successor -- not vanish into ``AttributeError``/
``ImportError`` noise -- so these pin the error type and message.
"""

import importlib
import sys

import pytest

from repro.params import default_config


# ----------------------------------------------------------------------
# JourneyTracer (successor: repro.obs.trace)
# ----------------------------------------------------------------------
def test_journey_tracer_module_raises_with_successor():
    sys.modules.pop("repro.debug.tracer", None)
    with pytest.raises(RuntimeError, match="repro.obs.trace"):
        importlib.import_module("repro.debug.tracer")
    # The message also names the facade-level alternative.
    sys.modules.pop("repro.debug.tracer", None)
    with pytest.raises(RuntimeError, match="repro.api.trace"):
        importlib.import_module("repro.debug.tracer")


def test_debug_package_no_longer_exports_tracer():
    import repro.debug
    assert not hasattr(repro.debug, "JourneyTracer")
    assert not hasattr(repro.debug, "JourneyEvent")
    assert repro.debug.__all__ == []


def test_span_tracer_successor_importable():
    # The successor named by the removal message must actually exist.
    from repro.obs.trace import SpanTracer, attach, detach
    assert callable(attach) and callable(detach) and SpanTracer


# ----------------------------------------------------------------------
# SimConfig.replace (successor: SimConfig.with_)
# ----------------------------------------------------------------------
def test_simconfig_replace_raises_with_successor():
    cfg = default_config()
    with pytest.raises(RuntimeError, match=r"SimConfig\.with_"):
        cfg.replace(llc_inclusion="inclusive")


def test_simconfig_with_still_works():
    cfg = default_config()
    out = cfg.with_(llc_inclusion="inclusive")
    assert out.llc_inclusion == "inclusive"
    assert cfg.llc_inclusion == "non_inclusive"
