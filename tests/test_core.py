"""Tests for the OOO core model and stall attribution."""

import numpy as np
import pytest

from repro.core.ooo_core import OOOCore
from repro.core.rob import StallAccounting, StallCategory
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, KIND_STORE, Trace


def make_trace(records):
    ips = np.array([r[0] for r in records], dtype=np.int64)
    kinds = np.array([r[1] for r in records], dtype=np.int8)
    addrs = np.array([r[2] for r in records], dtype=np.int64)
    return Trace(ips, kinds, addrs)


def build_core():
    cfg = default_config()
    hierarchy = MemoryHierarchy(cfg)
    return OOOCore(cfg, hierarchy), cfg


def test_nonmem_ipc_bounded_by_retire_width():
    core, cfg = build_core()
    trace = make_trace([(0x400, KIND_NONMEM, 0)] * 4000)
    result = core.run(trace)
    assert result.instructions == 4000
    # Retire width 4: IPC can approach but not exceed it.
    assert 3.0 < result.ipc <= cfg.core.retire_width


def test_single_cold_load_stalls_head():
    core, _ = build_core()
    records = [(0x400, KIND_NONMEM, 0)] * 10
    records.append((0x500, KIND_LOAD, 0x1000_0000))
    records += [(0x400, KIND_NONMEM, 0)] * 10
    result = core.run(make_trace(records))
    stalls = result.stalls
    # The cold load misses STLB: both translation and replay stall.
    assert stalls.total(StallCategory.TRANSLATION) > 0
    assert stalls.total(StallCategory.REPLAY) > 0
    assert stalls.total(StallCategory.NON_REPLAY) == 0


def test_warm_load_attributed_to_non_replay():
    core, _ = build_core()
    records = [(0x500, KIND_LOAD, 0x1000_0000)]    # warms TLB+cache
    records += [(0x400, KIND_NONMEM, 0)] * 500
    records += [(0x500, KIND_LOAD, 0x2000_0000)]   # STLB miss again
    records += [(0x400, KIND_NONMEM, 0)] * 500
    records += [(0x500, KIND_LOAD, 0x2000_0040)]   # same page: STLB hit
    result = core.run(make_trace(records))
    # The last load is a non-replay (TLB hit) but a cache miss.
    assert result.stalls.total(StallCategory.NON_REPLAY) > 0


def test_stores_do_not_stall_head():
    core, _ = build_core()
    records = [(0x500, KIND_STORE, 0x1000_0000 + i * 4096)
               for i in range(50)]
    result = core.run(make_trace(records))
    assert result.stalls.total(StallCategory.REPLAY) == 0
    assert result.stalls.total(StallCategory.NON_REPLAY) == 0


def test_warmup_excludes_early_stats():
    core, _ = build_core()
    records = [(0x500, KIND_LOAD, 0x1000_0000)]
    records += [(0x400, KIND_NONMEM, 0)] * 999
    result = core.run(make_trace(records), warmup=500)
    assert result.instructions == 500
    # The only (stalling) load was in the warmup region.
    assert result.stalls.total(StallCategory.REPLAY) == 0
    assert core.hierarchy.loads == 0  # stats were reset at the boundary


def test_limit_truncates():
    core, _ = build_core()
    trace = make_trace([(0x400, KIND_NONMEM, 0)] * 100)
    result = core.run(trace, limit=10)
    assert result.instructions == 10


def test_mlp_overlaps_independent_misses():
    """Two independent cold loads should overlap, costing much less than
    2x one load's latency."""
    core, _ = build_core()
    one = make_trace([(0x500, KIND_LOAD, 0x1000_0000)])
    t_one = core.run(one).cycles

    core2, _ = build_core()
    two = make_trace([(0x500, KIND_LOAD, 0x1000_0000),
                      (0x501, KIND_LOAD, 0x7000_0000)])
    t_two = core2.run(two).cycles
    assert t_two < 2 * t_one


def test_speedup_over():
    core, _ = build_core()
    r = core.run(make_trace([(0x400, KIND_NONMEM, 0)] * 100))
    assert r.speedup_over(r) == pytest.approx(1.0)


def test_stall_accounting_split():
    acc = StallAccounting()
    acc.record_load_stall(100, is_replay=True, translation_pending=30)
    assert acc.total(StallCategory.TRANSLATION) == 30
    assert acc.total(StallCategory.REPLAY) == 70
    acc.record_load_stall(50, is_replay=False, translation_pending=0)
    assert acc.total(StallCategory.NON_REPLAY) == 50
    assert acc.translation_plus_replay() == 100
    assert acc.total_stall_cycles() == 150


def test_stall_accounting_clamps_translation_portion():
    acc = StallAccounting()
    # Translation pending longer than the stall window: all translation.
    acc.record_load_stall(40, is_replay=True, translation_pending=100)
    assert acc.total(StallCategory.TRANSLATION) == 40
    assert acc.total(StallCategory.REPLAY) == 0
    # Negative pending (walk done before the window): all replay.
    acc.record_load_stall(40, is_replay=True, translation_pending=-5)
    assert acc.total(StallCategory.REPLAY) == 40


def test_stall_accounting_ignores_nonpositive():
    acc = StallAccounting()
    acc.record_load_stall(0, is_replay=True, translation_pending=0)
    acc.record_other_stall(-3)
    assert acc.total_stall_cycles() == 0
    assert acc.avg(StallCategory.REPLAY) == 0.0


def test_snapshot_shape():
    acc = StallAccounting()
    acc.record_load_stall(10, is_replay=False, translation_pending=0)
    snap = acc.snapshot()
    assert snap["non_replay"]["events"] == 1
    assert snap["non_replay"]["max"] == 10
