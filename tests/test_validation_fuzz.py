"""Deterministic fuzz validation: seeded mixed streams through the fully
checked hierarchy (tests/test_validation_fuzz.py is the pytest face of
``make fuzz``).

``REPRO_FUZZ_STREAMS`` overrides the stream count (default 200, the CI
floor); ``REPRO_FUZZ_FIRST_SEED`` shifts the seed window for soak runs.
"""

import os

import pytest

from repro.validate import fuzz

N_STREAMS = int(os.environ.get("REPRO_FUZZ_STREAMS", "200"))
FIRST_SEED = int(os.environ.get("REPRO_FUZZ_FIRST_SEED", "0"))

#: Seeds grouped into chunks so a failure pinpoints its neighbourhood
#: without paying 200 separate hierarchy-import fixtures.
CHUNK = 25
CHUNKS = [(FIRST_SEED + i, min(CHUNK, N_STREAMS - i))
          for i in range(0, N_STREAMS, CHUNK)]


def test_case_generation_is_deterministic():
    for seed in (0, 3, 17, 101):
        a, b = fuzz.make_case(seed), fuzz.make_case(seed)
        assert a == b
        assert a.variant == fuzz.VARIANTS[seed % len(fuzz.VARIANTS)]
        assert len(a.ops) >= 1


def test_every_variant_is_exercised():
    variants = {fuzz.make_case(s).variant
                for s in range(FIRST_SEED, FIRST_SEED + len(fuzz.VARIANTS))}
    assert variants == set(fuzz.VARIANTS)


@pytest.mark.parametrize("first,count", CHUNKS,
                         ids=[f"seeds{f}-{f + c - 1}" for f, c in CHUNKS])
def test_fuzz_streams_clean(first, count):
    reports = fuzz.fuzz_range(first, count)
    assert reports == [], (
        f"{len(reports)} stream(s) violated invariants; minimal "
        "reproducers follow:\n" + "\n".join(reports))


def test_run_case_records_checker_activity():
    checker = fuzz.run_case(fuzz.make_case(FIRST_SEED))
    assert checker.events > 0
    assert checker.violations == []


def test_shrinker_reduces_failing_stream(monkeypatch):
    """Break MSHR conservation on purpose: the fuzzer must catch it, the
    shrinker must reduce the stream, and the formatted reproducer must be
    a paste-ready pytest test."""
    from repro.memsys.mshr import MSHR

    orig = MSHR.allocate

    def buggy_allocate(self, line_addr, fill_cycle, now):
        self.allocations += 1  # phantom double-count
        return orig(self, line_addr, fill_cycle, now)

    monkeypatch.setattr(MSHR, "allocate", buggy_allocate)
    case = fuzz.make_case(FIRST_SEED)
    checker = fuzz.run_case(case)
    assert checker.violations != []
    small = fuzz.shrink(case)
    assert 0 < len(small.ops) <= len(case.ops)
    assert fuzz.run_case(small).violations != []  # still reproduces
    report = fuzz.format_regression(small, checker.violations)
    assert f"def test_fuzz_regression_seed_{case.seed}(" in report
    assert "conservation" in report
    assert f"variant={case.variant!r}" in report


def test_shrink_returns_clean_case_untouched():
    case = fuzz.make_case(FIRST_SEED + 1)
    assert fuzz.shrink(case) == case
