"""Tests for the MMU (DTLB -> STLB -> walk orchestration)."""

import pytest

from repro.params import SimConfig, default_config
from repro.vm.address import make_va
from repro.vm.mmu import MMU
from repro.vm.page_table import PageTable


class FlatMemory:
    def __init__(self, latency=10):
        self.latency = latency
        self.requests = []

    def access(self, req):
        self.requests.append(req)
        req.served_by = "L1D"
        return req.cycle + self.latency


def make_mmu():
    cfg = default_config()
    pt = PageTable()
    mem = FlatMemory()
    return MMU(cfg, pt, mem), cfg, mem


VA = make_va([1, 2, 3, 4, 5], 0x100)


def test_cold_translation_walks_and_is_replay():
    mmu, cfg, mem = make_mmu()
    tr = mmu.translate(VA, cycle=0)
    assert tr.is_replay
    assert not tr.dtlb_hit and not tr.stlb_hit
    assert tr.walk is not None
    assert tr.walk.levels_walked == 5
    # dtlb(1) + stlb(8) + psc(1) + 5 reads(50) + stlb fill(2)
    assert tr.done_cycle == 1 + 8 + 1 + 50 + cfg.stlb_fill_latency


def test_dtlb_hit_after_walk():
    mmu, cfg, mem = make_mmu()
    mmu.translate(VA, cycle=0)
    tr = mmu.translate(VA, cycle=100)
    assert tr.dtlb_hit
    assert not tr.is_replay
    assert tr.done_cycle == 100 + cfg.dtlb.latency


def test_stlb_hit_fills_dtlb():
    mmu, cfg, mem = make_mmu()
    mmu.translate(VA, cycle=0)
    # Thrash the DTLB only.
    mmu.dtlb.invalidate_all()
    tr = mmu.translate(VA, cycle=100)
    assert not tr.dtlb_hit and tr.stlb_hit
    assert not tr.is_replay
    assert tr.done_cycle == 100 + 1 + 8
    # DTLB refilled:
    assert mmu.translate(VA, cycle=200).dtlb_hit


def test_paddr_consistent_across_paths():
    mmu, _, _ = make_mmu()
    p1 = mmu.translate(VA, cycle=0).paddr
    p2 = mmu.translate(VA, cycle=10).paddr
    assert p1 == p2
    p3 = mmu.translate(VA + 8, cycle=20).paddr
    assert p3 == p1 + 8


def test_count_stats_false_suppresses_counters():
    mmu, _, _ = make_mmu()
    mmu.translate(VA, cycle=0, count_stats=False)
    assert mmu.translations == 0
    assert mmu.dtlb.accesses == 0
    assert mmu.stlb.accesses == 0


def test_stlb_mpki():
    mmu, _, _ = make_mmu()
    mmu.translate(VA, cycle=0)
    assert mmu.stlb_mpki(1000) == 1.0
