"""Tests for repro.memsys.dram."""

import pytest

from repro.memsys.dram import DRAM, _BankSchedule, _ChannelBandwidth
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import DRAMConfig


def make_dram(**kwargs):
    return DRAM(DRAMConfig(**kwargs))


def test_first_access_is_row_miss():
    dram = make_dram()
    req = MemoryRequest(address=0x10000, cycle=0)
    done = dram.access(req)
    assert done == dram.config.row_miss_latency
    assert dram.row_misses == 1
    assert req.served_by == "DRAM"


def test_second_access_same_row_is_row_hit():
    dram = make_dram()
    line = 0x10000
    dram.access(MemoryRequest(address=line, cycle=0))
    done = dram.access(MemoryRequest(address=line + 64, cycle=500))
    assert done == 500 + dram.config.row_hit_latency
    assert dram.row_hits == 1


def test_row_conflict_occupies_bank():
    cfg = DRAMConfig(channels=1, banks_per_channel=1)
    dram = DRAM(cfg)
    dram.access(MemoryRequest(address=0, cycle=0))
    # Different row in the same (only) bank, arriving mid-activation.
    other_row = cfg.row_buffer_bytes * 2
    done = dram.access(MemoryRequest(address=other_row, cycle=10))
    # Must wait for the first activation (tRC) to release the bank.
    assert done >= cfg.row_miss_latency + cfg.row_miss_latency


def test_out_of_order_arrival_schedules_in_the_past():
    """A request with an earlier timestamp must not queue behind a
    far-future request (the inversion artifact the interval scheduler
    fixes)."""
    cfg = DRAMConfig(channels=1, banks_per_channel=1)
    dram = DRAM(cfg)
    dram.access(MemoryRequest(address=0, cycle=10_000))
    # Arrives (in call order) later, but in time much earlier; different row.
    done = dram.access(MemoryRequest(
        address=cfg.row_buffer_bytes * 4, cycle=0))
    assert done == cfg.row_miss_latency  # scheduled in the past gap


def test_channel_bandwidth_is_capped():
    bw = _ChannelBandwidth(bus_transfer_cycles=4)
    starts = [bw.reserve(0) for _ in range(bw.cap * 2)]
    # First `cap` transfers fit in the first bucket; the rest spill over.
    assert starts[bw.cap] >= 32


def test_bank_schedule_first_fit_gap():
    bank = _BankSchedule()
    assert bank.reserve(0, 100) == 0
    assert bank.reserve(500, 100) == 500
    # A 100-cycle job fits in the [100, 500) gap.
    assert bank.reserve(50, 100) == 100


def test_bank_schedule_serializes_overlap():
    bank = _BankSchedule()
    assert bank.reserve(0, 100) == 0
    assert bank.reserve(0, 100) == 100
    assert bank.reserve(0, 100) == 200


def test_tempo_callback_fires_on_leaf_translation():
    dram = make_dram()
    seen = []
    dram.on_leaf_translation = lambda req, done: seen.append((req, done))
    req = MemoryRequest(address=0x40, cycle=0,
                        access_type=AccessType.TRANSLATION, pt_level=1,
                        replay_line_addr=0x99)
    done = dram.access(req)
    assert seen and seen[0][1] == done


def test_tempo_callback_skips_non_leaf():
    dram = make_dram()
    seen = []
    dram.on_leaf_translation = lambda req, done: seen.append(req)
    dram.access(MemoryRequest(address=0x40, cycle=0,
                              access_type=AccessType.TRANSLATION, pt_level=3))
    dram.access(MemoryRequest(address=0x80, cycle=0))
    assert not seen


def test_bandwidth_only_access_advances_state():
    dram = make_dram()
    dram.bandwidth_only_access(0x1000 >> 6, 0)
    assert dram.row_misses == 1
