"""Tests for SHiP and the signature machinery."""

import pytest

from repro.cache.replacement.ship import SHiPPolicy
from repro.cache.store import CacheStore
from repro.memsys.request import AccessType, MemoryRequest


def req(ip=0x400, **kw):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip, **kw)


def bound(pol):
    store = CacheStore(pol.num_sets, pol.num_ways)
    pol.bind(store)
    return store


def fill(pol, store, r):
    """Fill way 0 of set 0 and return its slot index."""
    store.reset_slot(0, r.line_addr, 0)
    pol.on_fill(0, 0, r)
    return 0


def test_fill_records_signature():
    pol = SHiPPolicy(16, 4)
    store = bound(pol)
    slot = fill(pol, store, req(ip=0x1234))
    assert store.signature[slot] == pol.signature(req(ip=0x1234))


def test_hit_trains_signature_up():
    pol = SHiPPolicy(16, 4)
    store = bound(pol)
    r = req(ip=0x42)
    before = pol.shct_value(r)
    slot = fill(pol, store, r)
    pol.on_hit(0, 0, r)
    assert pol.shct_value(r) == min(before + 1, pol.SHCT_MAX)
    assert store.rrpv[slot] == 0


def test_unreused_eviction_trains_down():
    pol = SHiPPolicy(16, 4)
    store = bound(pol)
    r = req(ip=0x42)
    before = pol.shct_value(r)
    slot = fill(pol, store, r)
    store.reused[slot] = 0
    pol.on_evict(0, 0)
    assert pol.shct_value(r) == max(before - 1, 0)


def test_reused_eviction_does_not_train_down():
    pol = SHiPPolicy(16, 4)
    store = bound(pol)
    r = req(ip=0x42)
    before = pol.shct_value(r)
    slot = fill(pol, store, r)
    store.reused[slot] = 1
    pol.on_evict(0, 0)
    assert pol.shct_value(r) == before


def test_dead_signature_inserts_distant():
    pol = SHiPPolicy(16, 4)
    store = bound(pol)
    r = req(ip=0x42)
    # Train the signature to zero via repeated dead evictions.
    for _ in range(10):
        fill(pol, store, r)
        pol.on_evict(0, 0)
    assert pol.shct_value(r) == 0
    assert pol.insertion_rrpv(0, r) == pol.max_rrpv


def test_live_signature_inserts_long():
    pol = SHiPPolicy(16, 4)
    store = bound(pol)
    r = req(ip=0x42)
    fill(pol, store, r)
    for _ in range(5):
        pol.on_hit(0, 0, r)
    assert pol.insertion_rrpv(0, r) == pol.max_rrpv - 1


def test_training_is_per_signature():
    pol = SHiPPolicy(16, 4)
    store = bound(pol)
    dead, live = req(ip=0x42), req(ip=0x1000043)
    assert pol.signature(dead) != pol.signature(live)
    for _ in range(10):
        fill(pol, store, dead)
        pol.on_evict(0, 0)
    assert pol.insertion_rrpv(0, dead) == pol.max_rrpv
    assert pol.insertion_rrpv(0, live) == pol.max_rrpv - 1
