"""Tests for SHiP and the signature machinery."""

import pytest

from repro.cache.block import CacheBlock
from repro.cache.replacement.ship import SHiPPolicy
from repro.memsys.request import AccessType, MemoryRequest


def req(ip=0x400, **kw):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip, **kw)


def filled_block(pol, r):
    b = CacheBlock()
    b.valid = True
    pol.on_fill(0, 0, r, b)
    return b


def test_fill_records_signature():
    pol = SHiPPolicy(16, 4)
    b = filled_block(pol, req(ip=0x1234))
    assert b.signature == pol.signature(req(ip=0x1234))


def test_hit_trains_signature_up():
    pol = SHiPPolicy(16, 4)
    r = req(ip=0x42)
    before = pol.shct_value(r)
    b = filled_block(pol, r)
    pol.on_hit(0, 0, r, b)
    assert pol.shct_value(r) == min(before + 1, pol.SHCT_MAX)
    assert b.rrpv == 0


def test_unreused_eviction_trains_down():
    pol = SHiPPolicy(16, 4)
    r = req(ip=0x42)
    before = pol.shct_value(r)
    b = filled_block(pol, r)
    b.reused = False
    pol.on_evict(0, 0, b)
    assert pol.shct_value(r) == max(before - 1, 0)


def test_reused_eviction_does_not_train_down():
    pol = SHiPPolicy(16, 4)
    r = req(ip=0x42)
    before = pol.shct_value(r)
    b = filled_block(pol, r)
    b.reused = True
    pol.on_evict(0, 0, b)
    assert pol.shct_value(r) == before


def test_dead_signature_inserts_distant():
    pol = SHiPPolicy(16, 4)
    r = req(ip=0x42)
    # Train the signature to zero via repeated dead evictions.
    for _ in range(10):
        b = filled_block(pol, r)
        pol.on_evict(0, 0, b)
    assert pol.shct_value(r) == 0
    assert pol.insertion_rrpv(0, r) == pol.max_rrpv


def test_live_signature_inserts_long():
    pol = SHiPPolicy(16, 4)
    r = req(ip=0x42)
    b = filled_block(pol, r)
    for _ in range(5):
        pol.on_hit(0, 0, r, b)
    assert pol.insertion_rrpv(0, r) == pol.max_rrpv - 1


def test_training_is_per_signature():
    pol = SHiPPolicy(16, 4)
    dead, live = req(ip=0x42), req(ip=0x1000043)
    assert pol.signature(dead) != pol.signature(live)
    for _ in range(10):
        b = filled_block(pol, dead)
        pol.on_evict(0, 0, b)
    assert pol.insertion_rrpv(0, dead) == pol.max_rrpv
    assert pol.insertion_rrpv(0, live) == pol.max_rrpv - 1
