"""Tests for phased workloads and the adaptive T-DRRIP extension."""

import numpy as np
import pytest

from repro.cache.replacement import make_policy
from repro.cache.replacement.translation_aware import AdaptiveTDRRIPPolicy
from repro.memsys.request import AccessType, MemoryRequest
from repro.workloads.graph import pr_mix
from repro.workloads.spec import xalancbmk_mix
from repro.workloads.synthetic import PatternMix, PhasedWorkload


# -- PhasedWorkload ---------------------------------------------------------
def test_phased_validates():
    with pytest.raises(ValueError):
        PhasedWorkload([])
    with pytest.raises(ValueError):
        PhasedWorkload([(pr_mix(), 0)])


def test_phased_length_and_name():
    w = PhasedWorkload([(pr_mix(), 1), (xalancbmk_mix(), 1)], name="mixed")
    trace = w.generate(10_000, seed=3)
    assert len(trace) == 10_000
    assert trace.name == "mixed"


def test_phased_actually_changes_behavior():
    """The pr phase gathers over the big region; the xalancbmk phase is
    tamer -- the halves must differ in footprint."""
    w = PhasedWorkload([(pr_mix(), 1), (xalancbmk_mix(), 1)])
    trace = w.generate(20_000, seed=3)
    first, second = trace[:10_000], trace[10_000:]
    assert first.footprint_pages() != second.footprint_pages()


def test_phased_repeats():
    w = PhasedWorkload([(pr_mix(), 1), (xalancbmk_mix(), 1)], repeats=2)
    trace = w.generate(8_000)
    assert len(trace) == 8_000


def test_phased_runs_through_simulator():
    from repro.core.ooo_core import OOOCore
    from repro.params import default_config
    from repro.uncore.hierarchy import MemoryHierarchy
    cfg = default_config()
    w = PhasedWorkload([(pr_mix(), 1), (xalancbmk_mix(), 1)], repeats=2)
    result = OOOCore(cfg, MemoryHierarchy(cfg)).run(
        w.generate(6_000), warmup=1_000)
    assert result.cycles > 0


# -- AdaptiveTDRRIPPolicy -----------------------------------------------------
def leaf(ip=0x400):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip,
                         access_type=AccessType.TRANSLATION, pt_level=1)


def test_adaptive_registry():
    pol = make_policy("t_drrip_adaptive", 256, 8)
    assert isinstance(pol, AdaptiveTDRRIPPolicy)


def test_adaptive_t_leaders_always_pin_translations():
    pol = AdaptiveTDRRIPPolicy(256, 8)
    t_leader = next(iter(pol._t_leaders))
    assert pol.insertion_rrpv(t_leader, leaf()) == 0


def test_adaptive_plain_leaders_never_pin():
    pol = AdaptiveTDRRIPPolicy(256, 8)
    plain = next(iter(pol._plain_leaders))
    assert pol.insertion_rrpv(plain, leaf()) != 0


def test_adaptive_followers_switch_with_tpsel():
    pol = AdaptiveTDRRIPPolicy(256, 8)
    follower = next(s for s in range(256)
                    if s not in pol._t_leaders
                    and s not in pol._plain_leaders)
    # Punish the T-leaders: followers fall back to plain DRRIP.
    t_leader = next(iter(pol._t_leaders))
    for _ in range(600):
        pol.record_miss(t_leader)
    assert pol.insertion_rrpv(follower, leaf()) != 0
    # Punish the plain leaders harder: followers re-enable T-insertion.
    plain = next(iter(pol._plain_leaders))
    for _ in range(1200):
        pol.record_miss(plain)
    assert pol.insertion_rrpv(follower, leaf()) == 0


def test_adaptive_leader_groups_disjoint():
    pol = AdaptiveTDRRIPPolicy(256, 8)
    assert not (pol._t_leaders & pol._plain_leaders)
