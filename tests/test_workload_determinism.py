"""Determinism audit of ``repro.workloads``.

The contract (see ``docs/scenarios.md``): trace generation is a pure
function of ``(name, seed, instructions, scale)`` -- byte-identical
across calls, across generation order, and across *processes* (no
module-level RNG state, no salted ``hash()``-derived seeds).  The mix
engine extends the contract to interleaved traces, and ``derive_seed``
is pinned so seed-splitting never silently changes.
"""

import hashlib
import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.workloads import (MixComponent, apportion, benchmark_names,
                             derive_seed, interleave_traces, make_trace)

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def trace_digest(trace) -> str:
    h = hashlib.sha256()
    for arr in (trace.ips, trace.kinds, trace.addrs, trace.deps):
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def assert_traces_identical(a, b):
    assert np.array_equal(a.ips, b.ips)
    assert np.array_equal(a.kinds, b.kinds)
    assert np.array_equal(a.addrs, b.addrs)
    assert np.array_equal(a.deps, b.deps)


# ----------------------------------------------------------------------
# Per-trace determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["pr", "mcf", "canneal", "compute"])
def test_trace_is_pure_function_of_inputs(name):
    a = make_trace(name, 3_000, scale=16, seed=7)
    b = make_trace(name, 3_000, scale=16, seed=7)
    assert_traces_identical(a, b)


def test_seed_and_geometry_change_the_trace():
    base = make_trace("pr", 3_000, scale=16, seed=1)
    assert trace_digest(make_trace("pr", 3_000, scale=16, seed=2)) \
        != trace_digest(base)
    assert trace_digest(make_trace("pr", 3_000, scale=8, seed=1)) \
        != trace_digest(base)


def test_generation_order_does_not_leak():
    """Generating other traces in between must not perturb a trace --
    the failure mode of hidden module-level RNG state."""
    before = make_trace("cc", 2_000, scale=16, seed=3)
    for other in ("pr", "mcf", "bf"):
        make_trace(other, 1_000, scale=16, seed=9)
    after = make_trace("cc", 2_000, scale=16, seed=3)
    assert_traces_identical(before, after)


def test_cross_generator_determinism():
    """Every registry benchmark regenerates identically, interleaved in
    forward and reverse order."""
    names = benchmark_names(include_controls=True)
    first = {n: trace_digest(make_trace(n, 1_000, scale=16, seed=5))
             for n in names}
    second = {n: trace_digest(make_trace(n, 1_000, scale=16, seed=5))
              for n in reversed(names)}
    assert first == second


def test_trace_identical_across_processes():
    """The digest must not depend on the process (catches anything
    derived from Python's salted ``hash()`` or ambient RNG state)."""
    child = (
        "import hashlib, numpy as np\n"
        "from repro.workloads import make_trace\n"
        "t = make_trace('pr', 2000, scale=16, seed=11)\n"
        "h = hashlib.sha256()\n"
        "for a in (t.ips, t.kinds, t.addrs, t.deps):\n"
        "    h.update(np.ascontiguousarray(a).tobytes())\n"
        "print(h.hexdigest())\n")
    digests = set()
    for hashseed in ("0", "12345"):
        env = dict(os.environ, PYTHONPATH=str(SRC_ROOT.parent),
                   PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", child], capture_output=True, text=True,
            check=True, env=env)
        digests.add(out.stdout.strip())
    local = trace_digest(make_trace("pr", 2_000, scale=16, seed=11))
    assert digests == {local}


# ----------------------------------------------------------------------
# Seed derivation and the mix engine
# ----------------------------------------------------------------------
def test_derive_seed_is_pinned():
    # SHA-256-based splitting: these values must never change (they are
    # baked into every multi-component scenario trace).
    assert derive_seed(1, "component", 0, "pr") == 2111310924706022401
    assert derive_seed(42, "arrival", "poisson") == 433997235086266203
    assert derive_seed(1) != derive_seed(2)
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_apportion_exact_and_deterministic():
    assert sum(apportion(10_000, [0.35, 0.25, 0.2, 0.2])) == 10_000
    assert apportion(10, [1, 1, 1]) == apportion(10, [1, 1, 1])
    # Every positive-weight component gets at least one instruction.
    assert min(apportion(5, [1000, 1, 1, 1, 1])) >= 1
    with pytest.raises(ValueError):
        apportion(0, [1.0])
    with pytest.raises(ValueError):
        apportion(10, [0.0, 0.0])


@pytest.mark.parametrize("arrival", ["uniform", "poisson", "bursty"])
def test_interleave_is_deterministic(arrival):
    comps = [MixComponent("pr", 0.6, benchmark="pr"),
             MixComponent("cc", 0.4, benchmark="cc")]
    a = interleave_traces(comps, 4_000, scale=16, seed=9, arrival=arrival)
    b = interleave_traces(comps, 4_000, scale=16, seed=9, arrival=arrival)
    assert len(a) == 4_000
    assert_traces_identical(a, b)


def test_interleave_single_component_is_identity():
    comp = [MixComponent("pr", 1.0, benchmark="pr")]
    mixed = interleave_traces(comp, 3_000, scale=16, seed=4)
    direct = make_trace("pr", 3_000, scale=16, seed=4)
    assert_traces_identical(mixed, direct)


def test_interleave_realises_the_weights():
    comps = [MixComponent("a", 0.75, pattern={"loads_per_kilo": 100}),
             MixComponent("b", 0.25, pattern={"loads_per_kilo": 100})]
    shares = apportion(8_000, [c.weight for c in comps])
    assert shares == [6_000, 2_000]
    mixed = interleave_traces(comps, 8_000, scale=16, seed=1,
                              arrival="poisson")
    assert len(mixed) == 8_000


# ----------------------------------------------------------------------
# Source audit: no global-RNG leaks
# ----------------------------------------------------------------------
def test_no_module_level_rng_in_src():
    """Every random draw must come from an explicitly seeded generator:
    ``np.random.default_rng(seed)`` or ``random.Random(seed)``.  The
    module-level ``np.random.*`` / ``random.*`` functions share hidden
    global state and break cross-process determinism."""
    np_global = re.compile(r"\bnp\.random\.(?!default_rng\b|Generator\b)")
    py_global = re.compile(
        r"(?<![\w.])random\.(?!Random\b)[a-z_]+\s*\(")
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if np_global.search(code) or py_global.search(code):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}: "
                                 f"{line.strip()}")
    assert not offenders, "global RNG usage:\n" + "\n".join(offenders)
