"""Tests for the Section V-B prior-work models (DpPred/CbPred, CSALT)."""

import pytest

from repro.cache.store import CacheStore
from repro.compare.csalt import CSALTPolicy
from repro.compare.dead_page import DeadBlockBypass, DeadPagePredictor
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


# -- DpPred ---------------------------------------------------------------
def test_dppred_learns_dead_signature():
    pred = DeadPagePredictor()
    ip = 0x42
    for vpn in range(10):
        pred.on_stlb_fill(vpn, ip)
        pred.on_stlb_evict(vpn)  # never reused
    assert pred.is_dead(ip)


def test_dppred_learns_live_signature():
    pred = DeadPagePredictor()
    ip = 0x42
    for vpn in range(10):
        pred.on_stlb_fill(vpn, ip)
        pred.on_stlb_reuse(vpn)
        pred.on_stlb_evict(vpn)
    assert not pred.is_dead(ip)


def test_dppred_signatures_independent():
    pred = DeadPagePredictor()
    for vpn in range(10):
        pred.on_stlb_fill(vpn, 0x42)
        pred.on_stlb_evict(vpn)
    assert pred.is_dead(0x42)
    assert not pred.is_dead(0x1000 + 7)


def test_dppred_evict_unknown_vpn_is_noop():
    pred = DeadPagePredictor()
    pred.on_stlb_evict(0x999)  # never filled: no crash, no training
    pred.on_stlb_reuse(0x999)


# -- CbPred bypass ----------------------------------------------------------
def test_dead_block_bypass_only_demand_data():
    pred = DeadPagePredictor()
    for vpn in range(10):
        pred.on_stlb_fill(vpn, 0x42)
        pred.on_stlb_evict(vpn)
    bypass = DeadBlockBypass(pred)
    dead_load = MemoryRequest(address=0x1000, cycle=0, ip=0x42)
    translation = MemoryRequest(address=0x1000, cycle=0, ip=0x42,
                                access_type=AccessType.TRANSLATION,
                                pt_level=1)
    assert bypass(dead_load)
    assert not bypass(translation)  # translations are never bypassed
    assert bypass.bypassed == 1


def test_cbpred_hierarchy_wiring():
    cfg = default_config().with_(comparison="cbpred")
    h = MemoryHierarchy(cfg)
    assert h.dead_page_predictor is not None
    assert h.mmu.stlb.observer is h.dead_page_predictor
    assert h.llc.bypass_predicate is h.dead_block_bypass
    # It runs end to end.
    h.load(make_va([1, 2, 3, 4, 5]), cycle=0, ip=0x42)


def test_unknown_comparison_mode_rejected():
    cfg = default_config().with_(comparison="mockingjay")
    with pytest.raises(ValueError):
        MemoryHierarchy(cfg)


def test_llc_bypass_skips_install():
    cfg = default_config().with_(comparison="cbpred")
    h = MemoryHierarchy(cfg)
    # Make every prediction dead.
    h.dead_page_predictor._counters = [0] * len(
        h.dead_page_predictor._counters)
    va = make_va([1, 2, 3, 4, 5])
    res = h.load(va, cycle=0, ip=0x42)
    assert not h.llc.contains(res.paddr >> 6)  # bypassed at the LLC
    assert h.l2c.contains(res.paddr >> 6)      # still filled above
    assert h.llc.fills_bypassed >= 1


# -- CSALT -----------------------------------------------------------------
def _bound(pol, specs):
    store = CacheStore(pol.num_sets, pol.num_ways)
    pol.bind(store)
    for way, (line, is_translation) in enumerate(specs):
        store.valid[way] = 1
        store.line[way] = line
        store.is_translation[way] = 1 if is_translation else 0
        store.rrpv[way] = 1
    return store


def test_csalt_partition_evicts_within_class():
    pol = CSALTPolicy(4, 4, initial_t_ways=2)
    store = _bound(pol, [(1, True), (2, True), (3, False), (4, False)])
    # Translation fill while at quota: must evict a translation way.
    t_req = MemoryRequest(address=0x100, cycle=0,
                          access_type=AccessType.TRANSLATION, pt_level=1)
    victim = pol.victim(0, t_req)
    assert store.is_translation[victim]
    # Data fill while translations within quota: evicts a data way.
    d_req = MemoryRequest(address=0x200, cycle=0)
    victim = pol.victim(0, d_req)
    assert not store.is_translation[victim]


def test_csalt_quota_adapts():
    pol = CSALTPolicy(4, 8, initial_t_ways=2)
    _bound(pol, [])
    start = pol.t_ways
    # Starve translations: low translation hit rate, high data hit rate.
    t_req = MemoryRequest(address=0x100, cycle=0,
                          access_type=AccessType.TRANSLATION, pt_level=1)
    d_req = MemoryRequest(address=0x200, cycle=0)
    for _ in range(pol.EPOCH_FILLS):
        pol._accesses["translation"] += 1       # misses only
        pol.on_hit(0, 0, d_req)
        pol._epoch_tick_count = 0
        pol.on_fill(0, 0, d_req)
    assert pol.t_ways > start


def test_csalt_hierarchy_wiring():
    cfg = default_config().with_(comparison="csalt")
    h = MemoryHierarchy(cfg)
    assert h.llc.policy.name == "csalt"
    h.load(make_va([1, 2, 3, 4, 5]), cycle=0)
