"""Tests for repro.vm.address."""

import pytest
from hypothesis import given, strategies as st

from repro.params import PAGE_SHIFT, PT_LEVELS, VA_BITS
from repro.vm.address import (level_index, make_va, page_number, page_offset,
                              psc_tag)


def test_page_split_roundtrip():
    va = 0x1234_5678_9ABC
    assert (page_number(va) << PAGE_SHIFT) | page_offset(va) == va


def test_level_index_bounds():
    with pytest.raises(ValueError):
        level_index(0, 0)
    with pytest.raises(ValueError):
        level_index(0, PT_LEVELS + 1)


def test_make_va_places_indices():
    va = make_va([1, 2, 3, 4, 5], offset=0x123)
    assert level_index(va, 5) == 1
    assert level_index(va, 4) == 2
    assert level_index(va, 3) == 3
    assert level_index(va, 2) == 4
    assert level_index(va, 1) == 5
    assert page_offset(va) == 0x123


def test_make_va_validates():
    with pytest.raises(ValueError):
        make_va([1, 2, 3])
    with pytest.raises(ValueError):
        make_va([1, 2, 3, 4, 512])


def test_psc_tag_includes_own_level_index():
    va1 = make_va([1, 2, 3, 4, 5])
    va2 = make_va([1, 2, 3, 9, 5])  # differs at level 2
    assert psc_tag(va1, 2) != psc_tag(va2, 2)
    assert psc_tag(va1, 3) == psc_tag(va2, 3)  # level-3 path identical


def test_psc_tag_nests():
    """Two VAs sharing a level-n tag share all shallower tags too."""
    va1 = make_va([7, 6, 5, 4, 3])
    va2 = make_va([7, 6, 5, 4, 200])
    assert psc_tag(va1, 2) == psc_tag(va2, 2)
    assert psc_tag(va1, 5) == psc_tag(va2, 5)


@given(st.integers(min_value=0, max_value=(1 << VA_BITS) - 1))
def test_va_decomposition_reconstructs(va):
    indices = [level_index(va, lvl) for lvl in range(PT_LEVELS, 0, -1)]
    assert make_va(indices, page_offset(va)) == va


@given(st.integers(min_value=0, max_value=(1 << VA_BITS) - 1),
       st.integers(min_value=1, max_value=5))
def test_psc_tag_is_va_prefix(va, level):
    shift = PAGE_SHIFT + 9 * (level - 1)
    assert psc_tag(va, level) == va >> shift
