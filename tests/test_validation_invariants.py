"""Tests for repro.validate.invariants: the checkers must be silent on
healthy runs, loud on seeded corruption, and absent when disabled."""

import pytest

from repro import validate
from repro.experiments.runner import run_benchmark
from repro.params import EnhancementConfig, default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.validate.invariants import (CheckContext, HierarchyChecker,
                                       ROBChecker, ValidationError)
from repro.vm.address import make_va


@pytest.fixture
def checked(monkeypatch):
    """A small hierarchy with the full checker stack attached."""
    monkeypatch.setenv("REPRO_CHECK", "1")
    cfg = default_config(16).with_(
        enhancements=EnhancementConfig.full())
    hierarchy = MemoryHierarchy(cfg)
    assert hierarchy.checker is not None
    return hierarchy


def drive(hierarchy, n=64):
    cycle = 0
    for i in range(n):
        res = hierarchy.load(make_va([1, 0, 0, i % 4, i % 32]), cycle)
        cycle = res.data_done + 1


# ----------------------------------------------------------------------
def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    hierarchy = MemoryHierarchy(default_config(16))
    assert hierarchy.checker is None
    # Zero-cost-when-off contract: the bound methods are untouched.
    assert "access" not in hierarchy.l1d.__dict__
    assert "translate" not in hierarchy.mmu.__dict__


def test_enable_checking_forces_attachment(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    validate.enable_checking()
    try:
        assert validate.checking_enabled()
        hierarchy = MemoryHierarchy(default_config(16))
        assert hierarchy.checker is not None
    finally:
        validate.enable_checking(False)


def test_clean_run_counts_events_and_stays_silent(checked):
    drive(checked)
    checked.checker.final_check()
    assert checked.checker.events > 0
    assert checked.checker.violations == []


def test_run_benchmark_final_check(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    result = run_benchmark("pr", instructions=4_000, warmup=1_000, scale=16)
    checker = result.hierarchy.checker
    assert checker is not None
    assert checker.events > 0
    assert checker.violations == []


# -- seeded corruption: every checker family must catch its fault ------
def test_detects_stats_corruption(checked):
    drive(checked, 8)
    checked.l1d.stats.hits["non_replay"] += 1
    with pytest.raises(ValidationError, match="hits"):
        drive(checked, 1)


def test_detects_duplicate_way_mapping(checked):
    drive(checked, 32)
    slot_of = checked.l1d.store.slot_of
    lines = list(slot_of)[:2]
    slot_of[lines[0]] = slot_of[lines[1]]  # two lines now share a slot
    with pytest.raises(ValidationError):
        checked.checker.final_check()


def test_detects_rrpv_out_of_bounds(checked):
    drive(checked, 32)
    llc = checked.llc
    max_rrpv = llc.policy.max_rrpv
    store = llc.store
    slot = next(s for s in range(store.size) if store.valid[s])
    store.rrpv[slot] = max_rrpv + 5
    with pytest.raises(ValidationError, match="RRPV"):
        checked.checker.final_check()


def test_detects_mshr_conservation_break(checked):
    drive(checked, 8)
    checked.l2c.mshr.allocations += 3  # phantom allocations
    with pytest.raises(ValidationError, match="conservation"):
        drive(checked, 1)


def test_detects_mshr_leak(checked):
    drive(checked, 8)
    mshr = checked.l1d.mshr
    bound = 2 * (mshr.entries + checked.l1d._prefetch_queue)
    far_future = 10**9
    for i in range(bound + 1):
        mshr._inflight[0x900000 + i] = far_future
    mshr.allocations += bound + 1  # keep conservation intact: pure leak
    with pytest.raises(ValidationError, match="leaking"):
        drive(checked, 1)


def test_detects_inclusion_violation(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    cfg = default_config(16).with_(llc_inclusion="inclusive")
    hierarchy = MemoryHierarchy(cfg)
    drive(hierarchy, 32)
    # Drop a line from the LLC behind the back-invalidation machinery's
    # back: its L1D/L2C copies now violate inclusion.
    victim = next(line for line in hierarchy.l2c.store.slot_of
                  if hierarchy.llc.contains(line))
    slot = hierarchy.llc.store.slot_of.pop(victim)
    hierarchy.llc.store.valid[slot] = 0
    with pytest.raises(ValidationError, match="inclusive"):
        hierarchy.checker.final_check()


def test_detects_translation_mismatch(checked):
    mmu = checked.mmu
    va = make_va([1, 0, 0, 0, 7])
    mmu.translate(va, 0)  # maps the page
    # Corrupt the cached frame in the DTLB: the differential check against
    # the page table must catch the stale/wrong translation.
    for frames in mmu.dtlb._frames:
        for key in frames:
            frames[key] += 1
    with pytest.raises(ValidationError, match="page"):
        mmu.translate(va, 100)


def test_rob_checker_occupancy_and_order():
    ctx = CheckContext()
    rob = ROBChecker(rob_entries=4, ctx=ctx)
    for cycle in (5, 5, 7):
        rob.on_retire(cycle, occupancy=2)
    with pytest.raises(ValidationError, match="occupancy"):
        rob.on_retire(8, occupancy=5)
    with pytest.raises(ValidationError, match="out-of-order"):
        rob.on_retire(3, occupancy=1)


def test_record_mode_collects_instead_of_raising(checked):
    hierarchy = MemoryHierarchy(default_config(16))
    checker = hierarchy.checker or HierarchyChecker(hierarchy, strict=False)
    checker.ctx.strict = False
    drive(hierarchy, 8)
    hierarchy.l1d.stats.hits["non_replay"] += 1
    drive(hierarchy, 4)  # keeps running, recording violations
    assert len(checker.violations) > 0


def test_shared_llc_not_double_attached(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    cfg = default_config(16)
    first = MemoryHierarchy(cfg)
    second = MemoryHierarchy(cfg, page_table=first.page_table,
                             shared_llc=first.llc, shared_dram=first.dram)
    checked_names = [c.cache.name for c in second.checker.cache_checkers]
    assert "LLC" not in checked_names  # first hierarchy owns its checks
    drive(first, 16)
    drive(second, 16)
    first.checker.final_check()
    second.checker.final_check()
