"""Tests for multi-seed aggregation and the control workload."""

import pytest

from repro.experiments.runner import run_benchmark, run_benchmark_multi
from repro.params import EnhancementConfig, default_config
from repro.workloads.registry import benchmark_names

TINY = dict(instructions=4000, warmup=1000)


def test_benchmark_names_excludes_controls_by_default():
    names = benchmark_names()
    assert "compute" not in names
    assert len(names) == 9
    assert "compute" in benchmark_names(include_controls=True)


def test_compute_control_has_negligible_stlb_misses():
    r = run_benchmark("compute", instructions=10_000, warmup=2_500)
    assert r.stlb_mpki < 1.0


def test_enhancements_do_not_hurt_low_mpki_workloads():
    """Paper: 'our enhancements do not affect the performance of
    applications that do not see significant STLB misses'."""
    base = run_benchmark("compute", instructions=10_000, warmup=2_500)
    cfg = default_config().with_(enhancements=EnhancementConfig.full())
    enh = run_benchmark("compute", config=cfg, instructions=10_000,
                        warmup=2_500)
    assert enh.speedup_over(base) == pytest.approx(1.0, abs=0.05)


def test_multi_seed_aggregates():
    res = run_benchmark_multi("tc", seeds=[1, 2, 3],
                              instructions=12_000, warmup=3_000)
    assert len(res.runs) == 3
    assert res.cycles_mean > 0
    # Post-warmup runs of this length are seed-stable within ~20%.
    assert 0.0 <= res.cycles_spread < 0.2
    assert res.stlb_mpki_mean > 0


def test_multi_seed_requires_seeds():
    with pytest.raises(ValueError):
        run_benchmark_multi("tc", seeds=[], **TINY)


def test_multi_seed_speedup_is_stable():
    """The enhancement speedup holds across seeds (not trace luck)."""
    base = run_benchmark_multi("canneal", seeds=[1, 2, 3],
                               instructions=10_000, warmup=2_500)
    cfg = default_config().with_(enhancements=EnhancementConfig.full())
    enh = run_benchmark_multi("canneal", seeds=[1, 2, 3], config=cfg,
                              instructions=10_000, warmup=2_500)
    assert enh.speedup_over(base) > 0.99
