"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.experiments import registry


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "pr" in out
    assert "fig14" in out


def test_run_command(capsys):
    rc = main(["run", "tc", "--instructions", "2000", "--warmup", "500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "stlb_mpki" in out


def test_run_with_enhancements(capsys):
    rc = main(["run", "tc", "--enhancements", "full",
               "--instructions", "2000", "--warmup", "500"])
    assert rc == 0
    assert "full" in capsys.readouterr().out


def test_figure_command(capsys):
    rc = main(["figure", "fig3", "--benchmarks", "tc",
               "--instructions", "2000", "--warmup", "500"])
    assert rc == 0
    assert "[Fig 3]" in capsys.readouterr().out


def test_figure_registry_covers_all_data_figures():
    expected = {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                "fig8", "fig10", "fig12", "fig14", "fig15", "fig16",
                "fig17", "fig18", "fig19", "fig20", "fig21", "table2",
                "multicore"}
    assert expected <= set(registry.names())


def test_invalid_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["run", "gcc"])


def test_run_accepts_library_scenario_name(capsys):
    rc = main(["run", "SYN-01-STLB-THRASH",
               "--instructions", "2000", "--warmup", "500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SYN-01-STLB-THRASH" in out
    assert "IPC" in out


# ----------------------------------------------------------------------
# Observability: run --metrics, stats subcommand
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def metrics_export(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-obs") / "tc.json"
    rc = main(["run", "tc", "--instructions", "6000", "--warmup", "1000",
               "--metrics", str(path), "--sample-interval", "500"])
    assert rc == 0
    return path


def test_run_metrics_writes_export(metrics_export):
    assert metrics_export.exists()


def test_stats_renders_run_export(metrics_export, capsys):
    assert main(["stats", str(metrics_export)]) == 0
    out = capsys.readouterr().out
    assert "benchmark      : tc" in out
    assert "interval time-series" in out
    assert "end-of-run summary" in out


def test_stats_validate_ok(metrics_export, capsys):
    assert main(["stats", "--validate", str(metrics_export)]) == 0
    assert "OK (run export" in capsys.readouterr().out


def test_stats_validate_rejects_corrupt(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "repro.obs/v1", "kind": "run"}')
    assert main(["stats", "--validate", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err


def test_stats_missing_file(capsys):
    assert main(["stats", "/no/such/export.json"]) == 2


def test_stats_csv(metrics_export, tmp_path, capsys):
    out_csv = tmp_path / "series.csv"
    assert main(["stats", str(metrics_export), "--csv",
                 str(out_csv)]) == 0
    header = out_csv.read_text().splitlines()[0]
    assert header.startswith("index,")


def test_stats_diff_two_runs(metrics_export, tmp_path, capsys):
    other = tmp_path / "tc2.json"
    rc = main(["run", "tc", "--instructions", "6000", "--warmup", "1000",
               "--enhancements", "full", "--metrics", str(other),
               "--sample-interval", "500"])
    assert rc == 0
    capsys.readouterr()
    assert main(["stats", str(metrics_export), str(other)]) == 0
    out = capsys.readouterr().out
    assert "summary diff" in out
    assert "ipc" in out


# ----------------------------------------------------------------------
# Argument validation: zero/negative counts must die at the parser
# ----------------------------------------------------------------------

@pytest.mark.parametrize("argv", [
    ["run", "tc", "--sample-interval", "0"],
    ["run", "tc", "--sample-interval", "-5"],
    ["run", "tc", "--trace-sample", "0"],
    ["run", "tc", "--trace-sample", "-1"],
    ["figure", "fig3", "--jobs", "0"],
    ["figure", "fig3", "--jobs", "-2"],
    ["scenario", "run", "SYN-01-STLB-THRASH", "--jobs", "0"],
    ["scenario", "run", "SYN-01-STLB-THRASH", "--instructions", "-1"],
    ["scenario", "run", "SYN-01-STLB-THRASH", "--scale", "0"],
    ["scenario", "run", "SYN-01-STLB-THRASH", "--seed", "-1"],
])
def test_nonpositive_counts_rejected_at_parser(argv, capsys):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2  # argparse usage error
    err = capsys.readouterr().err
    assert "invalid" in err or "must be" in err


def test_garbage_int_rejected_at_parser(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "tc", "--sample-interval", "lots"])
    assert exc.value.code == 2


# ----------------------------------------------------------------------
# Scenario subcommand
# ----------------------------------------------------------------------

def test_scenario_list(capsys):
    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "SYN-01-STLB-THRASH" in out
    assert "RL-01-GRAPH-SOUP" in out


def test_scenario_validate_library(capsys):
    assert main(["scenario", "validate", "--all"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "valid" in out


def test_scenario_validate_rejects_bad_document(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "repro.scenario/v1", "name": "x", '
                   '"mix": {"nope": 1.0}}')
    assert main(["scenario", "validate", str(bad)]) == 1
    err = capsys.readouterr().err
    assert "INVALID" in err


def test_scenario_run_emits_results(tmp_path, capsys):
    out_path = tmp_path / "results.jsonl"
    rc = main(["scenario", "run", "SYN-01-STLB-THRASH",
               "--instructions", "4000", "--warmup", "500",
               "--no-cache", "--out", str(out_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SYN-01-STLB-THRASH" in out and "ipc=" in out
    lines = out_path.read_text().splitlines()
    assert len(lines) == 1
    import json
    record = json.loads(lines[0])
    assert record["schema"] == "repro.scenario-result/v1"
    assert record["scenario"] == "SYN-01-STLB-THRASH"
    assert record["cycles"] > 0


def test_scenario_run_unknown_name(capsys):
    assert main(["scenario", "run", "NO-SUCH-SCENARIO",
                 "--no-cache"]) == 1
    assert "scenario error" in capsys.readouterr().err
