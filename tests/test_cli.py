"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import FIGURES, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "pr" in out
    assert "fig14" in out


def test_run_command(capsys):
    rc = main(["run", "tc", "--instructions", "2000", "--warmup", "500"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "stlb_mpki" in out


def test_run_with_enhancements(capsys):
    rc = main(["run", "tc", "--enhancements", "full",
               "--instructions", "2000", "--warmup", "500"])
    assert rc == 0
    assert "full" in capsys.readouterr().out


def test_figure_command(capsys):
    rc = main(["figure", "fig3", "--benchmarks", "tc",
               "--instructions", "2000", "--warmup", "500"])
    assert rc == 0
    assert "[Fig 3]" in capsys.readouterr().out


def test_figure_registry_covers_all_data_figures():
    expected = {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                "fig8", "fig10", "fig12", "fig14", "fig15", "fig16",
                "fig17", "fig18", "fig19", "fig20", "fig21", "table2",
                "multicore"}
    assert expected <= set(FIGURES)


def test_invalid_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["run", "gcc"])
