"""Tests for load-to-load dependency chains (pointer chasing)."""

import numpy as np
import pytest

from repro.core.ooo_core import OOOCore
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va
from repro.workloads.registry import make_trace
from repro.workloads.trace import KIND_LOAD, Trace


def chain_trace(n, dependent):
    addrs = np.array([make_va([6, 0, 0, i // 512, i % 512])
                      for i in range(n)], dtype=np.int64)
    deps = np.full(n, 1 if dependent else 0, dtype=np.int8)
    return Trace(np.full(n, 0x500, dtype=np.int64),
                 np.full(n, KIND_LOAD, dtype=np.int8), addrs, deps=deps)


def test_deps_default_zero():
    t = make_trace("pr", 1000)
    # pr is not a pointer chaser.
    assert int(t.deps.sum()) == 0


def test_mcf_marks_chase_loads_dependent():
    t = make_trace("mcf", 20_000)
    assert int(t.deps.sum()) > 0
    # Only loads carry the flag.
    assert (t.kinds[t.deps == 1] == KIND_LOAD).all()


def test_dependent_chain_serializes():
    """N dependent cold loads take ~N serial memory latencies; the same
    loads independent overlap massively."""
    cfg = default_config()
    n = 60
    serial = OOOCore(cfg, MemoryHierarchy(cfg)).run(chain_trace(n, True))
    parallel = OOOCore(cfg, MemoryHierarchy(cfg)).run(chain_trace(n, False))
    assert serial.cycles > 3 * parallel.cycles
    # Each chain step costs at least an L1D->DRAM round trip.
    assert serial.cycles > n * cfg.dram.row_hit_latency


def test_chain_survives_trace_io(tmp_path):
    from repro.workloads.io import load_trace, save_trace
    t = make_trace("mcf", 3000)
    save_trace(t, tmp_path / "m.npz")
    loaded = load_trace(tmp_path / "m.npz")
    assert np.array_equal(loaded.deps, t.deps)


def test_chain_in_engine_threadstate():
    from repro.core.engine import ThreadState
    cfg = default_config()
    t = ThreadState(chain_trace(30, True), MemoryHierarchy(cfg),
                    rob_entries=64, dispatch_width=3, retire_width=2)
    while not t.finished:
        t.step()
    assert t.roi_cycles > 30 * cfg.dram.row_hit_latency


def test_slicing_preserves_deps():
    t = make_trace("mcf", 4000)
    half = t[:2000]
    assert np.array_equal(half.deps, t.deps[:2000])
