"""Pins the public ``repro.api`` surface.

Every name in ``api.__all__`` must resolve; removing or breaking a
re-export is a compatibility break and should fail here first.
"""

import pytest

from repro import api


def test_every_exported_name_resolves():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_all_is_sorted_sets_no_duplicates():
    assert len(api.__all__) == len(set(api.__all__))


def test_expected_entry_points_present():
    expected = {"run", "figure", "list_figures", "list_benchmarks",
                "build_config", "enhancement_preset", "configure_parallel",
                "RunResult", "RunSummary", "EnhancementConfig",
                "StallCategory", "trace", "trace_diff"}
    assert expected <= set(api.__all__)


def test_enhancement_presets():
    assert api.ENHANCEMENT_PRESET_NAMES == ("none", "t_drrip", "t_ship",
                                            "atp", "full")
    none = api.enhancement_preset("none")
    assert not any([none.t_drrip, none.t_ship, none.newsign, none.atp,
                    none.tempo])
    full = api.enhancement_preset("full")
    assert all([full.t_drrip, full.t_ship, full.newsign, full.atp,
                full.tempo])
    # Fresh object per call: mutating one must not leak into the next.
    full.tempo = False
    assert api.enhancement_preset("full").tempo is True


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown enhancement preset"):
        api.enhancement_preset("everything")


def test_build_config_applies_enhancements_and_overrides():
    cfg = api.build_config(enhancements="t_drrip",
                           llc_inclusion="inclusive")
    assert cfg.enhancements.t_drrip and not cfg.enhancements.t_ship
    assert cfg.llc_inclusion == "inclusive"
    with pytest.raises(TypeError):
        api.build_config(no_such_field=True)


def test_run_rejects_config_and_enhancements_together():
    with pytest.raises(ValueError, match="not both"):
        api.run("pr", config=api.build_config(), enhancements="full")


def test_list_figures_and_benchmarks():
    figures = api.list_figures()
    assert isinstance(figures, tuple)
    assert "fig14" in figures and "table2" in figures
    assert "pr" in api.list_benchmarks()


def test_figure_unknown_name():
    with pytest.raises(KeyError, match="unknown figure"):
        api.figure("fig99")


def test_run_returns_runresult():
    result = api.run("tc", instructions=2_000, warmup=500)
    assert isinstance(result, api.RunResult)
    assert result.ipc > 0
    assert result.sampler is None  # observability off by default
    assert result.tracer is None  # tracing off by default
    with pytest.raises(ValueError, match="not traced"):
        result.trace_document()


def test_api_trace_returns_valid_document():
    doc = api.trace("tc", instructions=2_000, warmup=500)
    assert doc["schema"] == "repro.obs/trace-v1"
    assert doc["spans"]


def test_api_trace_diff_accepts_documents():
    a = api.trace("tc", instructions=2_000, warmup=500)
    b = api.trace("tc", instructions=2_000, warmup=500,
                  enhancements="full")
    diff = api.trace_diff(a, b)
    assert set(diff["attribution"]) == {
        "walk_latency", "replay_release", "insertion_policy"}
