"""Pins the public ``repro.api`` surface.

Every name in ``api.__all__`` must resolve; removing or breaking a
re-export is a compatibility break and should fail here first.  v2
promoted job submission (``submit``/``JobHandle``/``JobStatus``/
``serve``) to the front door and demoted ``ParallelRunner``/
``ResultCache``/``RunKey`` to warn-once compatibility re-exports.
"""

import ast
import asyncio
import dataclasses
import inspect
import warnings

import pytest

from repro import api


def test_every_exported_name_resolves():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_all_is_sorted_sets_no_duplicates():
    assert len(api.__all__) == len(set(api.__all__))


def test_expected_entry_points_present():
    expected = {"run", "figure", "list_figures", "list_benchmarks",
                "build_config", "enhancement_preset", "configure_parallel",
                "RunResult", "RunSummary", "EnhancementConfig",
                "StallCategory", "trace", "trace_diff"}
    assert expected <= set(api.__all__)


def test_enhancement_presets():
    assert api.ENHANCEMENT_PRESET_NAMES == ("none", "t_drrip", "t_ship",
                                            "atp", "full")
    none = api.enhancement_preset("none")
    assert not any([none.t_drrip, none.t_ship, none.newsign, none.atp,
                    none.tempo])
    full = api.enhancement_preset("full")
    assert all([full.t_drrip, full.t_ship, full.newsign, full.atp,
                full.tempo])
    # Fresh object per call: mutating one must not leak into the next.
    full.tempo = False
    assert api.enhancement_preset("full").tempo is True


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown enhancement preset"):
        api.enhancement_preset("everything")


def test_build_config_applies_enhancements_and_overrides():
    cfg = api.build_config(enhancements="t_drrip",
                           llc_inclusion="inclusive")
    assert cfg.enhancements.t_drrip and not cfg.enhancements.t_ship
    assert cfg.llc_inclusion == "inclusive"
    with pytest.raises(TypeError):
        api.build_config(no_such_field=True)


def test_run_rejects_config_and_enhancements_together():
    with pytest.raises(ValueError, match="not both"):
        api.run("pr", config=api.build_config(), enhancements="full")


def test_list_figures_and_benchmarks():
    figures = api.list_figures()
    assert isinstance(figures, tuple)
    assert "fig14" in figures and "table2" in figures
    assert "pr" in api.list_benchmarks()


def test_figure_unknown_name():
    with pytest.raises(KeyError, match="unknown figure"):
        api.figure("fig99")


def test_run_returns_runresult():
    result = api.run("tc", instructions=2_000, warmup=500)
    assert isinstance(result, api.RunResult)
    assert result.ipc > 0
    assert result.sampler is None  # observability off by default
    assert result.tracer is None  # tracing off by default
    with pytest.raises(ValueError, match="not traced"):
        result.trace_document()


def test_api_trace_returns_valid_document():
    doc = api.trace("tc", instructions=2_000, warmup=500)
    assert doc["schema"] == "repro.obs/trace-v1"
    assert doc["spans"]


def test_api_trace_diff_accepts_documents():
    a = api.trace("tc", instructions=2_000, warmup=500)
    b = api.trace("tc", instructions=2_000, warmup=500,
                  enhancements="full")
    diff = api.trace_diff(a, b)
    assert set(diff["attribution"]) == {
        "walk_latency", "replay_release", "insertion_policy"}


# ----------------------------------------------------------------------
# v1.1 additions: bench, frozen SimConfig, facade-only CLI
# ----------------------------------------------------------------------
def test_api_version_pinned():
    assert api.__api_version__ == "2.2"
    assert "__api_version__" in api.__all__


def test_v11_exports_present():
    assert {"bench", "BenchResult", "figure_spec",
            "SimConfig"} <= set(api.__all__)


def test_figure_spec_metadata():
    spec = api.figure_spec("fig14")
    assert spec.name == "fig14" and callable(spec)
    names = [s.name for s in api.figure_spec(None)]
    assert names == list(api.list_figures())


def test_simconfig_is_frozen():
    cfg = api.build_config()
    with pytest.raises(dataclasses.FrozenInstanceError):
        cfg.llc_inclusion = "inclusive"


def test_simconfig_with_resolves_preset_names():
    cfg = api.build_config()
    full = cfg.with_(enhancements="full")
    assert full.enhancements.atp and full.enhancements.tempo
    assert not cfg.enhancements.atp  # original untouched
    with pytest.raises(ValueError, match="unknown enhancement preset"):
        cfg.with_(enhancements="everything")
    with pytest.raises(TypeError):
        cfg.with_(no_such_field=1)


# SimConfig.replace was removed under the v2 major bump; its removal
# (RuntimeError naming SimConfig.with_) is pinned in
# tests/test_removed_shims.py alongside the JourneyTracer retirement.


def test_cli_routes_through_api_only():
    """The CLI is a shell over ``repro.api``: its module-level imports
    must not reach past the facade (and ``repro.bench``, which owns its
    own subcommand)."""
    import repro.__main__ as cli
    tree = ast.parse(inspect.getsource(cli))
    allowed = {"repro", "repro.api", "repro.bench", "argparse", "sys",
               "os", "__future__"}
    module_level = [node for node in tree.body
                    if isinstance(node, (ast.Import, ast.ImportFrom))]
    for node in module_level:
        if isinstance(node, ast.ImportFrom):
            assert node.module in allowed, node.module
        else:
            for alias in node.names:
                assert alias.name in allowed, alias.name


def test_bench_runs_and_is_schema_stable(tmp_path):
    from repro.bench import BENCH_SCHEMA, BenchCase
    tiny = (BenchCase("tc", instructions=2_000, warmup=500),)
    result = api.bench(matrix=tiny, out_dir=tmp_path)
    doc = result.document
    assert doc["schema"] == BENCH_SCHEMA
    assert {"schema", "created_utc", "python", "platform", "repeats",
            "calibration_ops_per_sec", "configs",
            "aggregate"} <= set(doc)
    (entry,) = doc["configs"]
    assert {"benchmark", "enhancements", "scale", "instructions",
            "warmup", "wall_s", "accesses", "accesses_per_sec", "ipc",
            "cycles", "phases"} <= set(entry)
    assert entry["accesses"] > 0 and result.accesses_per_sec > 0
    assert result.path is not None and result.path.exists()
    assert result.path.name.startswith("BENCH_")


def test_bench_regression_verdict():
    from repro.bench import compare_to_baseline

    def doc(aps, cal, benchmarks=("tc",)):
        return {"aggregate": {"accesses_per_sec": aps},
                "calibration_ops_per_sec": cal,
                "configs": [{"benchmark": b} for b in benchmarks]}

    cal = 2_000_000.0  # plausible ops/sec for the calibration loop
    # Same machine speed: 10% drop passes, 20% drop fails at 15%.
    assert compare_to_baseline(doc(900, cal), doc(1000, cal))["ok"]
    assert not compare_to_baseline(doc(800, cal), doc(1000, cal))["ok"]
    # Half-speed machine: the baseline expectation scales down with it.
    verdict = compare_to_baseline(doc(500, cal / 2), doc(1000, cal))
    assert verdict["ok"] and verdict["machine_ratio"] == 0.5
    # A different matrix always fails: numbers aren't comparable.
    verdict = compare_to_baseline(doc(1000, cal),
                                  doc(1000, cal, benchmarks=("pr",)))
    assert not verdict["ok"] and verdict["matrix_mismatch"]


# ----------------------------------------------------------------------
# v1.2 additions: scenario DSL, calibration-gate guards
# ----------------------------------------------------------------------
def test_v12_exports_present():
    assert {"run_scenario", "list_scenarios", "load_scenario",
            "validate_scenario", "ScenarioDoc", "ScenarioError",
            "ScenarioResult"} <= set(api.__all__)


def test_bench_verdict_rejects_degenerate_calibration():
    from repro.bench import compare_to_baseline

    def doc(aps, cal, benchmarks=("tc",)):
        return {"aggregate": {"accesses_per_sec": aps},
                "calibration_ops_per_sec": cal,
                "configs": [{"benchmark": b} for b in benchmarks]}

    # Near-zero current calibration would scale the floor to ~0 and
    # wave every regression through: must fail loudly instead.
    with pytest.raises(ValueError, match="degenerate document"):
        compare_to_baseline(doc(1, 1e-9), doc(1000, 2e6))
    # Near-zero baseline calibration would inflate the floor and fail
    # every run regardless of the code under test.
    with pytest.raises(ValueError, match="degenerate baseline"):
        compare_to_baseline(doc(1000, 2e6), doc(1000, 0.0))
    # Non-positive recorded throughput makes the floor meaningless.
    with pytest.raises(ValueError, match="accesses_per_sec"):
        compare_to_baseline(doc(1000, 2e6), doc(0, 2e6))
    # Calibration-free documents still compare unscaled.
    assert compare_to_baseline(doc(1000, None), doc(1000, None))["ok"]


# ----------------------------------------------------------------------
# v1.3 additions: execution backends (scalar reference vs vectorized)
# ----------------------------------------------------------------------
def test_v13_exports_present():
    assert "BACKENDS" in api.__all__
    assert api.BACKENDS == ("python", "numpy")


def test_build_config_accepts_backend_override():
    cfg = api.build_config(backend="numpy")
    assert cfg.backend == "numpy"
    with pytest.raises(ValueError, match="backend"):
        api.build_config(backend="fortran")


def test_bench_entries_record_backend(tmp_path):
    from repro.bench import BenchCase
    tiny = (BenchCase("tc", instructions=2_000, warmup=500),
            BenchCase("tc", instructions=2_000, warmup=500,
                      backend="numpy"))
    result = api.bench(matrix=tiny, out_dir=tmp_path)
    doc = result.document
    assert [e["backend"] for e in doc["configs"]] == ["python", "numpy"]
    by_backend = doc["aggregate"]["by_backend"]
    assert set(by_backend) == {"python", "numpy"}
    assert all(e["accesses_per_sec"] > 0 for e in by_backend.values())
    # Same trace, same simulated work under both backends.
    assert doc["configs"][0]["accesses"] == doc["configs"][1]["accesses"]
    assert doc["configs"][0]["cycles"] == doc["configs"][1]["cycles"]


def test_bench_verdict_gates_each_backend():
    from repro.bench import compare_to_baseline

    def doc(aps, by_backend):
        return {"aggregate": {"accesses_per_sec": aps,
                              "by_backend": by_backend},
                "calibration_ops_per_sec": None,
                "configs": [{"benchmark": "tc"}]}

    def bb(python, numpy):
        return {"python": {"accesses_per_sec": python},
                "numpy": {"accesses_per_sec": numpy}}

    base = doc(1000, bb(1000, 1000))
    assert compare_to_baseline(doc(1000, bb(1000, 1000)), base)["ok"]
    # A numpy-only collapse fails even when the aggregate still clears.
    verdict = compare_to_baseline(doc(950, bb(1100, 700)), base)
    assert not verdict["ok"]
    assert verdict["backends"]["numpy"]["ok"] is False
    assert verdict["backends"]["python"]["ok"] is True
    # Pre-backend baselines (no by_backend) gate on the aggregate only.
    legacy = {"aggregate": {"accesses_per_sec": 1000},
              "calibration_ops_per_sec": None,
              "configs": [{"benchmark": "tc"}]}
    verdict = compare_to_baseline(doc(950, bb(1100, 700)), legacy)
    assert verdict["ok"] and verdict["backends"] == {}


def test_calibrate_guards_sub_resolution_timer(monkeypatch):
    import repro.bench as bench_mod

    # A perf_counter frozen in time models a sub-resolution delta: the
    # old code divided by zero / returned inf; now it retries with a
    # bigger loop and ultimately refuses.
    monkeypatch.setattr(bench_mod.time, "perf_counter", lambda: 1.0)
    with pytest.raises(RuntimeError, match="calibration unmeasurable"):
        bench_mod.calibrate(iterations=1)


def test_calibrate_returns_credible_score():
    from repro.bench import MIN_CREDIBLE_CALIBRATION, calibrate
    score = calibrate(iterations=50_000)
    assert score >= MIN_CREDIBLE_CALIBRATION


# ----------------------------------------------------------------------
# v2.0: job surface promoted, v1 internals demoted (docs/service.md)
# ----------------------------------------------------------------------
def test_v2_job_surface_present():
    assert {"submit", "serve", "JobHandle", "JobStatus",
            "configure_service"} <= set(api.__all__)
    import repro.service
    assert api.JobHandle is repro.service.JobHandle
    assert api.JobStatus is repro.service.JobStatus
    assert asyncio.iscoroutinefunction(api.submit)
    assert callable(api.serve)


def test_v2_jobstatus_values():
    values = {s.value for s in api.JobStatus}
    assert values == {"pending", "running", "done", "failed",
                      "cancelled"}
    assert api.JobStatus.DONE.terminal
    assert not api.JobStatus.RUNNING.terminal


def test_v1_internals_still_importable_with_one_warning():
    """``api.RunKey``/``ParallelRunner``/``ResultCache`` keep working in
    v2 but direct callers to the job surface, once per name."""
    from repro.experiments import parallel
    for name in ("RunKey", "ParallelRunner", "ResultCache"):
        assert name in api.__all__
        with pytest.warns(DeprecationWarning, match="api.submit"):
            obj = getattr(api, name)
        assert obj is getattr(parallel, name)
        # Second access is silent (warn-once).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert getattr(api, name) is obj


def test_unknown_api_attribute_still_raises():
    with pytest.raises(AttributeError, match="no_such_name"):
        api.no_such_name


def test_submit_roundtrip_matches_direct_run(tmp_path):
    """Acceptance: a job-submitted run's RunSummary is bit-identical to
    the direct api.run summary on the same config/seed, and an
    identical resubmission is served from the store without executing."""
    from repro.service import JobStore, SweepService

    service = SweepService(store=JobStore(root=tmp_path), workers=0)

    async def scenario():
        h1 = await api.submit("run", benchmark="tc",
                              instructions=2_000, warmup=500,
                              service=service)
        await h1.wait()
        h2 = await api.submit("run", benchmark="tc",
                              instructions=2_000, warmup=500,
                              service=service)
        await h2.wait()
        await service.close()
        return h1, h2

    h1, h2 = asyncio.run(scenario())
    assert h1.status is api.JobStatus.DONE and h1.source == "run"
    assert h2.status is api.JobStatus.DONE and h2.source == "store"
    assert service.metrics.executed == 1
    assert service.metrics.store_hits == 1

    direct = api.run("tc", instructions=2_000, warmup=500)
    expected = api.RunSummary.from_run(direct, seed=1)
    assert h1.summary().to_dict() == expected.to_dict()
    assert h2.summary().to_dict() == expected.to_dict()


# ----------------------------------------------------------------------
# v2.2 additions: backend-aware surface
# ----------------------------------------------------------------------
def test_v22_exports_present():
    assert {"BatchStats", "FallbackReason", "BACKENDS"} <= set(api.__all__)


def test_run_backend_keyword():
    scalar = api.run("tc", instructions=2_000, warmup=500)
    vector = api.run("tc", instructions=2_000, warmup=500,
                     backend="numpy")
    # Bit-identical results; the batch record only on the numpy run.
    assert vector.summary() == scalar.summary()
    assert scalar.batch is None
    assert isinstance(vector.batch, api.BatchStats)
    assert vector.batch.windows > 0 and not vector.batch.fell_back
    assert vector.config.backend == "numpy"


def test_run_backend_layers_onto_config():
    cfg = api.build_config(enhancements="full")
    result = api.run("tc", config=cfg, instructions=2_000, warmup=500,
                     backend="numpy")
    assert result.config.backend == "numpy"
    assert result.config.enhancements.tempo


def test_run_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        api.run("tc", backend="fortran")


def test_bench_backend_pins_matrix():
    from repro.bench import BenchCase
    tiny = (BenchCase("tc", instructions=2_000, warmup=500),
            BenchCase("tc", instructions=2_000, warmup=500,
                      backend="numpy"))
    result = api.bench(matrix=tiny, backend="numpy")
    entries = result.document["configs"]
    # Both input rows collapse to the one numpy-pinned configuration.
    assert len(entries) == 1
    assert entries[0]["backend"] == "numpy"
    assert "batch" in entries[0]
    with pytest.raises(ValueError, match="unknown backend"):
        api.bench(matrix=tiny, backend="fortran")


def test_submit_validates_backend():
    from repro.service.jobs import JobError, JobSpec
    spec = JobSpec.make("run", benchmark="tc", backend="numpy")
    assert spec.param("backend") == "numpy"
    assert spec.run_key().config.backend == "numpy"
    with pytest.raises(JobError, match="unknown backend"):
        JobSpec.make("run", benchmark="tc", backend="fortran")
    with pytest.raises(JobError, match="unknown backend"):
        JobSpec.make("sweep", runs=["tc"], backend="fortran")


def test_batchstats_is_stable_dataclass():
    stats = api.BatchStats()
    assert not stats.fell_back and stats.excursion_fraction == 0.0
    stats.record_window(1024, fast_hits=700, fast_merges=10,
                        scalar_excursions=300)
    stats.record_fallback(api.FallbackReason.HUGE_PAGES)
    doc = stats.to_dict()
    assert {"windows", "instructions", "fast_hits", "fast_merges",
            "scalar_excursions", "walk_cohort", "precomputed_walks",
            "fallbacks", "cohort_buckets", "cohort_sizes"} == set(doc)
    assert doc["fallbacks"] == {"huge_pages": 1}
    assert sum(doc["cohort_sizes"]) == 1


def test_vector_parity_gate():
    from repro.bench import vector_parity

    def entry(benchmark, backend, sim, batch=...):
        if batch is ...:
            batch = {"windows": 100, "fallbacks": {}}
        return {"benchmark": benchmark, "backend": backend,
                "wall_s": sim + 0.01, "phases": {"simulate": sim},
                "batch": batch}

    def doc(*configs):
        return {"configs": list(configs)}

    # Engaged and at parity: passes.
    verdict = vector_parity(doc(entry("pr", "python", 1.0),
                                entry("pr", "numpy", 1.0)))
    assert verdict["ok"] and verdict["workloads"]["pr"]["speedup"] == 1.0
    # 10% slower is inside the 15% noise tolerance; 50% slower is not.
    assert vector_parity(doc(entry("pr", "python", 1.0),
                             entry("pr", "numpy", 1.1)))["ok"]
    verdict = vector_parity(doc(entry("pr", "python", 1.0),
                                entry("pr", "numpy", 1.5)))
    assert not verdict["ok"]
    assert verdict["workloads"]["pr"]["speedup"] < \
        verdict["workloads"]["pr"]["floor"]
    # A fast run that fell back to the scalar core must not pass: the
    # speed floor alone would wave a disengaged backend through.
    fallback = {"windows": 0, "fallbacks": {"sampler_tracer": 1}}
    verdict = vector_parity(doc(entry("pr", "python", 1.0),
                                entry("pr", "numpy", 0.5,
                                      batch=fallback)))
    assert not verdict["ok"]
    assert verdict["workloads"]["pr"]["fallback_rate"] == 1.0
    # A scalar entry masquerading as numpy (no batch record) fails too.
    assert not vector_parity(doc(entry("pr", "python", 1.0),
                                 entry("pr", "numpy", 0.5,
                                       batch=None)))["ok"]
    # Pre-backend documents (no numpy entry) skip the gate.
    verdict = vector_parity(doc(entry("pr", "python", 1.0)))
    assert verdict["ok"] and verdict["workloads"] == {}


def test_compare_to_baseline_folds_in_vector_parity():
    from repro.bench import compare_to_baseline

    def doc(numpy_sim):
        configs = [
            {"benchmark": "pr", "backend": "python", "wall_s": 1.01,
             "phases": {"simulate": 1.0}},
            {"benchmark": "pr", "backend": "numpy",
             "wall_s": numpy_sim + 0.01,
             "phases": {"simulate": numpy_sim},
             "batch": {"windows": 100, "fallbacks": {}}},
        ]
        return {"aggregate": {"accesses_per_sec": 1000.0},
                "calibration_ops_per_sec": None, "configs": configs}

    base = doc(1.0)
    assert compare_to_baseline(doc(1.0), base)["ok"]
    # Aggregate throughput is unchanged, but the numpy entry collapsed
    # to 2x the scalar simulate wall: the folded-in vector gate fails.
    verdict = compare_to_baseline(doc(2.0), base)
    assert not verdict["ok"]
    assert not verdict["vector"]["ok"]
