"""Tests for trace-v1 export, validation and the Perfetto conversion."""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import run_benchmark
from repro.obs.export import ExportSchemaError
from repro.obs.trace import (TRACE_SCHEMA, SpanTracer, attach, detach,
                             export_perfetto, export_trace, load_perfetto,
                             load_trace, perfetto_document, trace_document,
                             validate_trace, validate_trace_strict)
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va

GOLDEN = Path(__file__).parent / "data" / "trace_v1_golden.json"
RUN_KW = dict(instructions=12_000, warmup=2_000, seed=7)


def _golden_scenario_document():
    """The fixed two-load scenario the golden file was generated from."""
    hierarchy = MemoryHierarchy(default_config())
    tracer = SpanTracer()
    attach(hierarchy, tracer)
    va = make_va([1, 2, 3, 4, 5])
    hierarchy.load(va, cycle=0, ip=0x400000)
    hierarchy.load(va + 64, cycle=10_000, ip=0x400004)
    detach(hierarchy)
    return trace_document({"benchmark": "golden", "seed": 0}, tracer)


# ----------------------------------------------------------------------
# Golden file: the export layout is pinned byte-for-byte
# ----------------------------------------------------------------------
def test_golden_trace_layout_is_stable():
    doc = _golden_scenario_document()
    golden = json.loads(GOLDEN.read_text())
    assert doc == golden


def test_golden_trace_validates():
    assert validate_trace(json.loads(GOLDEN.read_text())) == []


# ----------------------------------------------------------------------
# Round-trip and schema identity
# ----------------------------------------------------------------------
def test_export_round_trip(tmp_path):
    doc = _golden_scenario_document()
    path = tmp_path / "t.json"
    export_trace(path, doc)
    assert load_trace(path) == doc


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "repro.obs/v1", "kind": "run"}))
    with pytest.raises(ExportSchemaError, match="not a repro.obs/trace-v1"):
        load_trace(path)


# ----------------------------------------------------------------------
# Validator error cases
# ----------------------------------------------------------------------
def _minimal_doc(**over):
    doc = {"schema": TRACE_SCHEMA, "kind": "trace", "manifest": {},
           "sample_every": 1, "requests_seen": 1, "requests_sampled": 1,
           "requests_dropped": 0,
           "spans": [{"id": 1, "parent": None, "name": "load", "cat": "",
                      "start": 0, "end": 5, "args": {}}]}
    doc.update(over)
    return doc


def test_validator_accepts_minimal_document():
    assert validate_trace(_minimal_doc()) == []
    assert validate_trace_strict(_minimal_doc()) is not None


@pytest.mark.parametrize("mutate, message", [
    (lambda d: d.pop("spans"), "missing key 'spans'"),
    (lambda d: d.update(kind="run"), "kind is 'run'"),
    (lambda d: d.update(sample_every=0), "sample_every"),
    (lambda d: d["spans"][0].pop("parent"), "missing key 'parent'"),
    (lambda d: d["spans"][0].update(parent="root"), "'parent' has type"),
    (lambda d: d["spans"][0].update(end=-1), "before start"),
    (lambda d: d["spans"].append(dict(d["spans"][0])), "duplicate id"),
    (lambda d: d["spans"].append(
        {"id": 2, "parent": 99, "name": "x", "cat": "", "start": 0,
         "end": 0, "args": {}}), "parent 99 not in document"),
    (lambda d: d["spans"].append(
        {"id": 2, "parent": 1, "name": "x", "cat": "", "start": -5,
         "end": 0, "args": {}}), "before its parent"),
])
def test_validator_rejects(mutate, message):
    doc = _minimal_doc()
    mutate(doc)
    errors = validate_trace(doc)
    assert any(message in e for e in errors), errors
    with pytest.raises(ExportSchemaError):
        validate_trace_strict(doc)


# ----------------------------------------------------------------------
# Traced run exports
# ----------------------------------------------------------------------
def test_traced_run_export_validates(tmp_path):
    result = run_benchmark("pr", trace_sample=1, **RUN_KW)
    doc = result.export_trace(tmp_path / "run.json")
    assert validate_trace(doc) == []
    assert doc["requests_seen"] == result.tracer.seq
    assert doc["manifest"]["simulated"]["cycles"] == result.cycles
    assert len(doc["spans"]) == result.tracer.span_count


def test_sampled_export_keeps_groups_whole():
    result = run_benchmark("pr", trace_sample=5, **RUN_KW)
    doc = result.trace_document()
    # The structural validator enforces referential integrity, so a
    # sampled trace passing means no parent was sampled away.
    assert validate_trace(doc) == []
    assert doc["sample_every"] == 5
    assert doc["requests_sampled"] < doc["requests_seen"]
    roots = [s for s in doc["spans"] if s["parent"] is None]
    assert all(s["args"]["seq"] % 5 == 0 for s in roots)


# ----------------------------------------------------------------------
# Chrome Trace Event Format / Perfetto
# ----------------------------------------------------------------------
def test_perfetto_document_is_valid_chrome_trace_format():
    doc = _golden_scenario_document()
    perfetto = perfetto_document(doc)
    events = perfetto["traceEvents"]
    assert events, "no events emitted"
    for event in events:
        assert event["ph"] in ("X", "M", "i")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert event["dur"] > 0 and isinstance(event["ts"], int)
        elif event["ph"] == "i":
            assert event["s"] == "t"
        else:
            assert event["name"] == "thread_name"
    # Every span made it across, under its original id.
    span_ids = {e["args"]["span_id"] for e in events if e["ph"] != "M"}
    assert span_ids == {s["id"] for s in doc["spans"]}


def test_perfetto_lane_assignment():
    doc = _golden_scenario_document()
    events = perfetto_document(doc)["traceEvents"]
    # Request lanes start at 1 (lane 0 is reserved for stalls), and the
    # two non-overlapping requests share one lane.
    lanes = {e["tid"] for e in events if e["ph"] != "M"}
    assert lanes == {1}
    named = {e["tid"] for e in events if e["ph"] == "M"}
    assert 0 in named  # the stall lane is always declared


def test_perfetto_concurrent_requests_get_distinct_lanes():
    result = run_benchmark("pr", trace_sample=1, **RUN_KW)
    doc = result.trace_document()
    events = perfetto_document(doc)["traceEvents"]
    lanes = {e["tid"] for e in events if e["ph"] != "M"}
    assert len(lanes) > 2  # overlapping lifecycles forced extra lanes
    stall_lanes = {e["tid"] for e in events
                   if e["ph"] != "M" and e["name"] == "stall"}
    assert stall_lanes == {0}


def test_export_perfetto_round_trip(tmp_path):
    doc = _golden_scenario_document()
    path = tmp_path / "p.json"
    export_perfetto(path, doc)
    loaded = load_perfetto(path)
    assert loaded == perfetto_document(doc)
    assert loaded["otherData"]["schema"] == TRACE_SCHEMA
