"""Tests for the request span tracer (`repro.obs.trace`).

Covers the tentpole guarantees: zero overhead when off (no wrapper
objects, bit-identical timing), correct lifecycle nesting for a cold
walk, request-granular sampling and ring bounding, stall attribution,
and same-seed determinism.
"""

import pytest

from repro.experiments.runner import run_benchmark
from repro.obs.trace import (DEFAULT_RING_CAPACITY, SpanTracer, attach,
                             detach)
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va

RUN_KW = dict(instructions=12_000, warmup=2_000, seed=7)


# ----------------------------------------------------------------------
# Zero overhead when off
# ----------------------------------------------------------------------
def test_tracing_off_by_default():
    hierarchy = MemoryHierarchy(default_config())
    assert hierarchy.tracer is None
    assert hierarchy.mmu.tracer is None
    assert hierarchy.mmu.walker.tracer is None
    assert hierarchy.dram.tracer is None
    for cache in (hierarchy.l1d, hierarchy.l2c, hierarchy.llc):
        assert cache.mshr.tracer is None
        # No per-access wrapper objects: `access` is the plain class
        # method, not an instance attribute closure.
        assert "access" not in cache.__dict__

    result = run_benchmark("pr", **RUN_KW)
    assert result.tracer is None
    for cache in (result.hierarchy.l1d, result.hierarchy.l2c,
                  result.hierarchy.llc):
        assert "access" not in cache.__dict__


def test_traced_run_timing_is_bit_identical():
    base = run_benchmark("pr", **RUN_KW)
    traced = run_benchmark("pr", trace_sample=1, **RUN_KW)
    assert traced.cycles == base.cycles
    assert traced.summary() == base.summary()


# ----------------------------------------------------------------------
# Attach / detach
# ----------------------------------------------------------------------
def test_attach_detach_restores_everything():
    hierarchy = MemoryHierarchy(default_config())
    tracer = SpanTracer()
    attach(hierarchy, tracer)
    assert hierarchy.tracer is tracer
    assert hierarchy.mmu.tracer is tracer
    assert "access" in hierarchy.l1d.__dict__  # wrapped while attached
    with pytest.raises(RuntimeError, match="already attached"):
        attach(hierarchy, SpanTracer())
    detach(hierarchy)
    assert hierarchy.tracer is None
    assert hierarchy.mmu.tracer is None
    assert hierarchy.mmu.walker.tracer is None
    assert hierarchy.dram.tracer is None
    for cache in (hierarchy.l1d, hierarchy.l2c, hierarchy.llc):
        assert "access" not in cache.__dict__
        assert cache.mshr.tracer is None


# ----------------------------------------------------------------------
# Lifecycle nesting
# ----------------------------------------------------------------------
def test_cold_load_nests_full_walk():
    hierarchy = MemoryHierarchy(default_config())
    tracer = SpanTracer()
    attach(hierarchy, tracer)
    res = hierarchy.load(make_va([1, 2, 3, 4, 5]), cycle=0)

    (group,) = list(tracer.requests)
    by_name = {}
    for span in group:
        by_name.setdefault(span.name, []).append(span)

    root = group[-1]
    assert root.name == "load" and root.parent is None
    assert root.cat == "replay" and res.is_replay
    assert root.args["seq"] == 0

    # translate -> walk -> pte_L5..pte_L1, each nested in the previous.
    (translate,) = by_name["translate"]
    assert translate.parent == root.id
    (walk,) = by_name["walk"]
    assert walk.parent == translate.id
    ptes = sorted((s for name, spans in by_name.items()
                   if name.startswith("pte_L") for s in spans),
                  key=lambda s: s.start)
    assert [s.name for s in ptes] == [f"pte_L{l}" for l in (5, 4, 3, 2, 1)]
    assert all(s.parent == walk.id for s in ptes)
    # The leaf level is tagged, with the level that served it recorded.
    assert ptes[-1].args["leaf"] is True
    assert all(s.args["leaf"] is False for s in ptes[:-1])
    assert walk.args["leaf_served_by"] == ptes[-1].args["served_by"]
    assert walk.args["levels_walked"] == 5

    # Each PTE read probes the hierarchy: L1D spans nest under pte_L*.
    pte_ids = {s.id for s in ptes}
    l1d_under_walk = [s for s in by_name["L1D"] if s.parent in pte_ids]
    assert len(l1d_under_walk) == 5

    # The data phase: data -> L1D -> ... -> DRAM (cold miss).
    (data,) = by_name["data"]
    assert data.parent == root.id
    assert data.args["served_by"] == "DRAM" == res.data_served_by
    dram = by_name["DRAM"]
    assert any(s.cat == "replay" for s in dram)
    detach(hierarchy)


def test_warm_load_has_no_walk():
    hierarchy = MemoryHierarchy(default_config())
    tracer = SpanTracer()
    attach(hierarchy, tracer)
    va = make_va([1, 2, 3, 4, 5])
    hierarchy.load(va, cycle=0)
    hierarchy.load(va + 8, cycle=10_000)
    warm = list(tracer.requests)[1]
    names = {s.name for s in warm}
    assert "walk" not in names
    root = warm[-1]
    assert root.cat == "non_replay"
    detach(hierarchy)


# ----------------------------------------------------------------------
# Sampling and the ring
# ----------------------------------------------------------------------
def test_sampling_is_request_granular():
    hierarchy = MemoryHierarchy(default_config())
    tracer = SpanTracer(sample_every=3)
    attach(hierarchy, tracer)
    for i in range(7):
        hierarchy.load(make_va([1, 2, 3, 4, i]), cycle=i * 10_000)
    assert tracer.seq == 7
    assert tracer.sampled_requests == 3
    seqs = [group[-1].args["seq"] for group in tracer.requests]
    assert seqs == [0, 3, 6]
    # Sampled groups stay whole: every parent id resolves in-group.
    for group in tracer.requests:
        ids = {s.id for s in group}
        assert all(s.parent in ids for s in group if s.parent is not None)
    detach(hierarchy)


def test_ring_bounds_memory_and_counts_drops():
    hierarchy = MemoryHierarchy(default_config())
    tracer = SpanTracer(max_requests=4)
    attach(hierarchy, tracer)
    for i in range(10):
        hierarchy.load(make_va([1, 2, 3, 4, i % 3]), cycle=i * 1_000)
    assert len(tracer.requests) == 4
    assert tracer.dropped_requests == 6
    assert tracer.sampled_requests == 10
    # The ring keeps the newest groups.
    seqs = [group[-1].args["seq"] for group in tracer.requests]
    assert seqs == [6, 7, 8, 9]
    detach(hierarchy)


def test_tracer_rejects_bad_parameters():
    with pytest.raises(ValueError):
        SpanTracer(sample_every=0)
    with pytest.raises(ValueError):
        SpanTracer(max_requests=0)
    assert DEFAULT_RING_CAPACITY >= 10_000


# ----------------------------------------------------------------------
# Core integration: ROI gating and stall spans
# ----------------------------------------------------------------------
def test_traced_run_covers_roi_only():
    result = run_benchmark("pr", trace_sample=1, **RUN_KW)
    tracer = result.tracer
    # Only ROI memory accesses are numbered: warmup requests are neither
    # counted nor recorded (the core enables the tracer at the boundary).
    h = result.hierarchy
    assert tracer.seq == h.loads + h.stores
    assert tracer.sampled_requests == tracer.seq


def test_stall_spans_match_stall_accounting():
    from repro.core.rob import StallCategory
    result = run_benchmark("pr", trace_sample=1, **RUN_KW)
    totals = {"translation": 0, "replay": 0, "non_replay": 0}
    for group in result.tracer.requests:
        (root_id,) = [s.id for s in group if s.parent is None]
        for span in group:
            if span.name == "stall":
                assert span.parent == root_id
                totals[span.cat] += span.duration
    # Load-side stall cycles agree exactly with StallAccounting; the
    # remainder (other-instruction stalls) has no request to attach to.
    stalls = result.core.stalls
    assert totals["translation"] == stalls.total(StallCategory.TRANSLATION)
    assert totals["replay"] == stalls.total(StallCategory.REPLAY)
    assert totals["non_replay"] <= stalls.total(StallCategory.NON_REPLAY)
    assert totals["replay"] > 0


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_same_seed_traces_identically():
    a = run_benchmark("pr", trace_sample=2, **RUN_KW)
    b = run_benchmark("pr", trace_sample=2, **RUN_KW)
    spans_a = [s.to_dict() for s in a.tracer.iter_spans()]
    spans_b = [s.to_dict() for s in b.tracer.iter_spans()]
    assert spans_a == spans_b
