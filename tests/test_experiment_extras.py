"""Tests for the ablation, extension and comparison experiment modules,
plus FigureResult utilities."""

import pytest

from repro.experiments.ablations import (ABLATION_VARIANTS,
                                         atp_trigger_placement,
                                         single_mechanism_ablation)
from repro.experiments.comparison import prior_work_comparison
from repro.experiments.extensions import huge_page_study
from repro.experiments.figures import FigureResult, fig14_performance

TINY = dict(instructions=3000, warmup=800, benchmarks=["pr"])


def test_single_mechanism_ablation_shape():
    res = single_mechanism_ablation(**TINY)
    assert set(res.data["pr"]) == set(ABLATION_VARIANTS)
    assert "gmean" in res.data


def test_atp_trigger_placement_counts():
    res = atp_trigger_placement(**TINY)
    d = res.data["pr"]
    assert set(d) == {"l2c", "llc", "tempo"}
    assert all(v >= 0 for v in d.values())


def test_prior_work_comparison_shape():
    res = prior_work_comparison(**TINY)
    assert set(res.data["pr"]) == {"cbpred", "csalt", "proposed"}
    assert all(0.3 < v < 2.0 for v in res.data["pr"].values())


def test_adaptive_tdrrip_study_shape():
    from repro.experiments.extensions import adaptive_tdrrip_study
    res = adaptive_tdrrip_study(benchmarks=["pr"], instructions=4000,
                                warmup=1000)
    d = res.data["pr"]
    assert set(d) == {"static", "adaptive"}
    # The adaptive variant tracks the static one closely on the paper's
    # workloads (it exists as insurance, not speedup).
    assert abs(d["static"] - d["adaptive"]) < 0.1


def test_huge_page_study_shape():
    res = huge_page_study(**TINY)
    d = res.data["pr"]
    assert d["stlb_2m"] < d["stlb_4k"]
    assert set(d) >= {"4K+enh", "2M", "2M+enh"}


def test_prefetch_accuracy_shape():
    from repro.experiments.accuracy import prefetch_accuracy
    res = prefetch_accuracy(benchmarks=["pr"], instructions=3000,
                            warmup=800)
    d = res.data["pr"]
    assert set(d) == {"ipcp", "spp", "bingo", "isb", "atp"}
    for label, entry in d.items():
        assert 0.0 <= entry["accuracy"] <= 1.0, label
    assert "overall" in res.data


def test_atp_accuracy_high_even_on_tiny_runs():
    from repro.experiments.accuracy import prefetch_accuracy
    res = prefetch_accuracy(benchmarks=["canneal"], instructions=6000,
                            warmup=1500)
    assert res.data["canneal"]["atp"]["accuracy"] > 0.9


def test_atp_scope_probe_restores_load():
    from repro.experiments.atp_scope import _ReplayLatencyProbe
    from repro.params import default_config
    from repro.uncore.hierarchy import MemoryHierarchy
    h = MemoryHierarchy(default_config())
    original = h.load
    with _ReplayLatencyProbe(h) as probe:
        from repro.vm.address import make_va
        h.load(make_va([1, 2, 3, 4, 5]), cycle=0)
        assert probe.count == 1
    assert h.load == original


def test_atp_scope_reports_positive_head_start():
    from repro.experiments.atp_scope import atp_scope
    res = atp_scope(benchmarks=["canneal"], instructions=10_000,
                    warmup=2_500)
    d = res.data["canneal"]
    assert d["triggers"] > 0
    assert d["head_start"] > 0
    assert 0.0 <= d["coverage"] <= 1.0


def test_figure_result_chart():
    res = FigureResult("Fig X", "demo", ["name", "value"],
                       rows=[["a", 1.5], ["b", 3.0], ["gmean", 2.0]])
    chart = res.chart(column=1)
    lines = chart.splitlines()
    assert len(lines) == 4
    assert lines[2].count("#") > lines[1].count("#")


def test_figure_result_chart_skips_non_numeric():
    res = FigureResult("Fig X", "demo", ["name", "value"],
                       rows=[["a", 1.5], ["note", ""]])
    assert len(res.chart(column=1).splitlines()) == 2


def test_figure_result_json_roundtrip(tmp_path):
    import json
    res = FigureResult("Fig X", "demo", ["name", "value"],
                       rows=[["a", 1.5]], data={"a": 1.5})
    path = tmp_path / "fig.json"
    res.save_json(path)
    loaded = json.loads(path.read_text())
    assert loaded["figure"] == "Fig X"
    assert loaded["rows"] == [["a", 1.5]]
    assert loaded["data"]["a"] == 1.5
