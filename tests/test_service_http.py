"""Tests for the HTTP front door and the urllib CLI client.

A real ``ThreadingHTTPServer`` on an ephemeral port, backed by a
``workers=0`` service with a stub executor -- no simulations, no fixed
ports, no sleeps (the event stream's own close signal provides the
synchronisation).
"""

import json
import threading
import urllib.request

import pytest

from repro.service import JobStore, SweepService
from repro.service.cli import (ServiceClientError, follow_events, request,
                               wait_for_job)
from repro.service.http import build_server
from repro.service.store import MANIFEST_SCHEMA

RUN = {"kind": "run", "benchmark": "tc", "instructions": 2000,
       "warmup": 500}


def stub_execute(spec_dict):
    return {"benchmark": spec_dict.get("benchmark"), "stub": True}


@pytest.fixture
def server(tmp_path):
    service = SweepService(store=JobStore(root=tmp_path), workers=0,
                           execute=stub_execute)
    httpd, runtime = build_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        httpd.shutdown()
        httpd.server_close()
        runtime.stop()
        thread.join(timeout=10)


# ----------------------------------------------------------------------
# Submission round-trip
# ----------------------------------------------------------------------
def test_submit_execute_result_roundtrip(server):
    url, service = server
    accepted = request(url, "/jobs", method="POST", body=RUN)
    assert accepted["kind"] == "run"
    assert accepted["status"] in ("pending", "running", "done")

    final = wait_for_job(url, accepted["id"])
    assert final["status"] == "done"
    assert final["source"] == "run"

    payload = request(url, f"/jobs/{accepted['id']}/result")
    assert payload == {"benchmark": "tc", "stub": True}
    assert request(url, f"/store/{accepted['digest']}") == payload


def test_second_submission_is_store_hit(server):
    url, service = server
    first = request(url, "/jobs", method="POST", body=RUN)
    wait_for_job(url, first["id"])

    second = request(url, "/jobs", method="POST", body=RUN)
    assert second["id"] != first["id"]
    assert second["digest"] == first["digest"]
    assert second["status"] == "done"
    assert second["source"] == "store"
    assert service.metrics.executed == 1
    assert service.metrics.store_hits == 1


def test_bad_spec_is_400(server):
    url, _ = server
    with pytest.raises(ServiceClientError) as exc:
        request(url, "/jobs", method="POST",
                body={"kind": "run", "instructions": 2000})
    assert exc.value.status == 400
    assert "benchmark" in exc.value.document["error"]

    with pytest.raises(ServiceClientError) as exc:
        request(url, "/jobs", method="POST", body={"kind": "warp"})
    assert exc.value.status == 400


def test_non_int_priority_is_400_not_zombie(server):
    url, service = server
    for bad in ("high", True, 2.5):
        with pytest.raises(ServiceClientError) as exc:
            request(url, "/jobs", method="POST",
                    body={**RUN, "priority": bad})
        assert exc.value.status == 400
        assert "priority" in exc.value.document["error"]
    # Nothing was registered: the same spec still submits and runs.
    assert service._inflight == {}
    ok = request(url, "/jobs", method="POST", body=RUN)
    assert wait_for_job(url, ok["id"])["status"] == "done"


def test_unknown_resources_are_404(server):
    url, _ = server
    for path in ("/jobs/job-999999-deadbeef", "/store/" + "f" * 64,
                 "/nope"):
        with pytest.raises(ServiceClientError) as exc:
            request(url, path)
        assert exc.value.status == 404


# ----------------------------------------------------------------------
# Status and health documents
# ----------------------------------------------------------------------
def test_health_reports_metrics_and_store(server):
    url, service = server
    doc = request(url, "/health")
    assert doc["workers"] == 0
    assert doc["queue_size"] == service.queue_size
    assert set(doc["metrics"]) >= {"submitted", "executed", "store_hits",
                                   "dedup_hits", "requeues"}
    assert doc["store"]["dir"] == str(service.store.dir)


def test_jobs_index_lists_every_submission(server):
    url, _ = server
    a = request(url, "/jobs", method="POST", body=RUN)
    b = request(url, "/jobs", method="POST",
                body={**RUN, "benchmark": "mg"})
    wait_for_job(url, a["id"])
    wait_for_job(url, b["id"])
    index = request(url, "/jobs")["jobs"]
    assert {j["id"] for j in index} >= {a["id"], b["id"]}
    assert all(j["status"] == "done" for j in index)


def test_store_manifest_endpoint(server):
    url, _ = server
    job = request(url, "/jobs", method="POST", body=RUN)
    wait_for_job(url, job["id"])
    manifest = request(url, "/store")
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["entries"] == 1
    assert manifest["digests"] == [job["digest"]]


# ----------------------------------------------------------------------
# Event streaming
# ----------------------------------------------------------------------
def test_event_stream_replays_full_lifecycle(server):
    url, _ = server
    job = request(url, "/jobs", method="POST", body=RUN)
    events = list(follow_events(url, job["id"]))
    statuses = [e["status"] for e in events if e.get("kind") == "status"]
    assert statuses == ["pending", "running", "done"]
    assert [e["seq"] for e in events] == list(range(len(events)))


def test_event_stream_resumes_from_offset(server):
    url, _ = server
    job = request(url, "/jobs", method="POST", body=RUN)
    full = list(follow_events(url, job["id"]))
    tail = list(follow_events(url, job["id"], start=2))
    assert tail == full[2:]


def test_event_stream_is_chunked_ndjson(server):
    url, _ = server
    job = request(url, "/jobs", method="POST", body=RUN)
    wait_for_job(url, job["id"])
    req = urllib.request.Request(url + f"/jobs/{job['id']}/events")
    with urllib.request.urlopen(req, timeout=30) as resp:
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        lines = [line for line in resp if line.strip()]
    assert all(json.loads(line) for line in lines)


# ----------------------------------------------------------------------
# Cancellation over HTTP
# ----------------------------------------------------------------------
def test_cancel_terminal_job_reports_false(server):
    url, _ = server
    job = request(url, "/jobs", method="POST", body=RUN)
    wait_for_job(url, job["id"])
    outcome = request(url, f"/jobs/{job['id']}/cancel", method="POST",
                      body={})
    assert outcome == {"id": job["id"], "cancelled": False,
                       "status": "done"}
    # Cancelled-nothing: the result is still servable.
    assert request(url, f"/jobs/{job['id']}/result")["stub"] is True


def test_result_409_for_unfinished_job(server):
    url, service = server
    job = request(url, "/jobs", method="POST", body=RUN)
    wait_for_job(url, job["id"])
    # A cancelled (never-run) job has no payload: 409, not 200/404.
    doomed_spec = {**RUN, "benchmark": "bfs"}
    doomed = request(url, "/jobs", method="POST", body=doomed_spec)
    # It may already have finished (workers=0 drains fast); only assert
    # the 409 when cancellation actually won the race.
    cancel = request(url, f"/jobs/{doomed['id']}/cancel", method="POST",
                     body={})
    if cancel["cancelled"]:
        with pytest.raises(ServiceClientError) as exc:
            request(url, f"/jobs/{doomed['id']}/result")
        assert exc.value.status == 409
        assert exc.value.document["status"] == "cancelled"
    else:
        wait_for_job(url, doomed["id"])
        assert request(url, f"/jobs/{doomed['id']}/result")


# ----------------------------------------------------------------------
# CLI parser registration (argparse wiring, no HTTP)
# ----------------------------------------------------------------------
def test_service_parsers_register_all_commands():
    import argparse

    from repro.service.cli import add_service_parsers
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    add_service_parsers(sub)
    assert set(sub.choices) == {"serve", "submit", "status", "result",
                                "cancel", "top"}

    args = parser.parse_args(["submit", "run", "tc", "--instructions",
                              "2000", "--warmup", "500", "--priority",
                              "3", "--url", "http://127.0.0.1:1"])
    assert args.kind == "run" and args.benchmark == "tc"
    assert args.instructions == 2000 and args.priority == 3

    args = parser.parse_args(["serve", "--port", "0", "--workers", "0"])
    assert args.port == 0 and args.workers == 0

    with pytest.raises(SystemExit):
        parser.parse_args(["submit", "run", "tc", "--instructions",
                           "-5"])


def test_cli_submit_against_live_server(server, capsys):
    url, _ = server
    import argparse

    from repro.service.cli import add_service_parsers
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    add_service_parsers(sub)

    args = parser.parse_args(["submit", "run", "tc", "--instructions",
                              "2000", "--warmup", "500", "--wait",
                              "--url", url])
    assert args.service_func(args) == 0
    submitted = json.loads(capsys.readouterr().out)
    assert submitted["status"] == "done"

    args = parser.parse_args(["status", submitted["id"], "--url", url])
    assert args.service_func(args) == 0
    assert json.loads(capsys.readouterr().out)["status"] == "done"

    args = parser.parse_args(["result", submitted["id"], "--url", url])
    assert args.service_func(args) == 0
    assert json.loads(capsys.readouterr().out)["stub"] is True

    args = parser.parse_args(["cancel", submitted["id"], "--url", url])
    assert args.service_func(args) == 1  # already done: nothing to do
