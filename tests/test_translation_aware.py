"""Tests for the paper's translation-conscious policies (Section IV)."""

import pytest

from repro.cache.replacement import make_policy
from repro.cache.replacement.translation_aware import (
    NewSignSHiPPolicy, TDRRIPPolicy, THawkeyePolicy, TSHiPPolicy, _aware_ip)
from repro.cache.store import CacheStore
from repro.memsys.request import AccessType, MemoryRequest


def bound(pol):
    store = CacheStore(pol.num_sets, pol.num_ways)
    pol.bind(store)
    return store


def leaf_translation(ip=0x400):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip,
                         access_type=AccessType.TRANSLATION, pt_level=1)


def upper_translation(ip=0x400):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip,
                         access_type=AccessType.TRANSLATION, pt_level=4)


def replay_load(ip=0x400):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip, is_replay=True)


def non_replay_load(ip=0x400):
    return MemoryRequest(address=0x1000, cycle=0, ip=ip)


# -- T-DRRIP (Fig 9) ----------------------------------------------------
def test_tdrrip_leaf_translations_insert_at_zero():
    pol = TDRRIPPolicy(64, 8)
    assert pol.insertion_rrpv(0, leaf_translation()) == 0


def test_tdrrip_upper_levels_use_default_insertion():
    pol = TDRRIPPolicy(64, 8)
    assert pol.insertion_rrpv(0, upper_translation()) != 0


def test_tdrrip_replays_insert_at_max():
    pol = TDRRIPPolicy(64, 8)
    assert pol.insertion_rrpv(0, replay_load()) == pol.max_rrpv


def test_tdrrip_non_replays_keep_drrip_insertion():
    pol = TDRRIPPolicy(64, 8)
    leader = next(iter(pol._srrip_leaders))
    assert pol.insertion_rrpv(leader, non_replay_load()) == pol.max_rrpv - 1


def test_tdrrip_fig10_misconfiguration():
    pol = TDRRIPPolicy(64, 8, replay_rrpv0=True)
    assert pol.insertion_rrpv(0, replay_load()) == 0


# -- signatures (Section IV) ---------------------------------------------
def test_aware_ip_separates_classes():
    ip = 0x1234
    sigs = {_aware_ip(leaf_translation(ip)), _aware_ip(replay_load(ip)),
            _aware_ip(non_replay_load(ip))}
    assert len(sigs) == 3


def test_newsign_signatures_disjoint_per_class():
    pol = NewSignSHiPPolicy(64, 16)
    ip = 0x1234
    sig_t = pol.signature(leaf_translation(ip))
    sig_r = pol.signature(replay_load(ip))
    sig_n = pol.signature(non_replay_load(ip))
    assert len({sig_t, sig_r, sig_n}) == 3


def test_newsign_training_isolated_between_classes():
    """Dead replay loads from IP X must not poison X's translations."""
    pol = NewSignSHiPPolicy(64, 16)
    bound(pol)
    ip = 0x77
    for _ in range(10):
        pol.on_fill(0, 0, replay_load(ip))
        pol.on_evict(0, 0)  # dead (never marked reused)
    assert pol.insertion_rrpv(0, replay_load(ip)) == pol.max_rrpv
    # Translations from the same IP are unaffected.
    assert pol.insertion_rrpv(0, leaf_translation(ip)) == pol.max_rrpv - 1


# -- T-SHiP (Fig 11) -----------------------------------------------------
def test_tship_leaf_translations_pinned_to_zero():
    pol = TSHiPPolicy(64, 16)
    assert pol.insertion_rrpv(0, leaf_translation()) == 0


def test_tship_promotion_unchanged_from_ship():
    pol = TSHiPPolicy(64, 16)
    store = bound(pol)
    pol.on_fill(0, 0, non_replay_load())
    store.rrpv[0] = 2
    pol.on_hit(0, 0, non_replay_load())
    assert store.rrpv[0] == 0


def test_tship_replay_rrpv0_misconfiguration():
    pol = TSHiPPolicy(64, 16, replay_rrpv0=True)
    assert pol.insertion_rrpv(0, replay_load()) == 0


# -- T-Hawkeye ------------------------------------------------------------
def test_thawkeye_leaf_translations_fill_at_zero():
    pol = THawkeyePolicy(64, 16)
    store = bound(pol)
    sig = pol.signature(leaf_translation())
    for _ in range(10):
        pol._train(sig, positive=False)  # predictor says averse
    pol.on_fill(0, 0, leaf_translation())
    assert store.rrpv[0] == 0  # pinned regardless of the predictor


def test_thawkeye_signatures_disjoint():
    pol = THawkeyePolicy(64, 16)
    ip = 0x1234
    assert pol.signature(leaf_translation(ip)) != pol.signature(
        non_replay_load(ip))


# -- registry -------------------------------------------------------------
@pytest.mark.parametrize("name,cls", [
    ("t_drrip", TDRRIPPolicy), ("t_ship", TSHiPPolicy),
    ("t_hawkeye", THawkeyePolicy), ("newsign_ship", NewSignSHiPPolicy)])
def test_registry_builds_translation_aware_policies(name, cls):
    pol = make_policy(name, 64, 8)
    assert isinstance(pol, cls)


def test_registry_rejects_unknown():
    with pytest.raises(ValueError):
        make_policy("belady", 64, 8)
