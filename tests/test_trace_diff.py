"""Tests for the cycle-attribution trace diff (and its CLI)."""

import pytest

from repro import api
from repro.__main__ import main
from repro.obs.trace import (TraceAlignmentError, TraceIndex,
                             critical_path, render_trace,
                             render_trace_diff, summarize, trace_diff)

RUN_KW = dict(instructions=12_000, warmup=2_000, seed=7)


@pytest.fixture(scope="module")
def baseline_doc():
    return api.trace("pr", **RUN_KW)


@pytest.fixture(scope="module")
def enhanced_doc():
    return api.trace("pr", enhancements="full", **RUN_KW)


@pytest.fixture(scope="module")
def diff(baseline_doc, enhanced_doc):
    return trace_diff(baseline_doc, enhanced_doc)


def test_delta_matches_manifest_cycles(diff, baseline_doc, enhanced_doc):
    cycles_a = baseline_doc["manifest"]["simulated"]["cycles"]
    cycles_b = enhanced_doc["manifest"]["simulated"]["cycles"]
    assert diff["delta_cycles"] == cycles_a - cycles_b
    assert diff["delta_cycles"] > 0  # the full stack must help on pr


def test_attribution_covers_eighty_percent(diff):
    # The acceptance bar: >= 80% of the cycle delta lands in the three
    # named mechanism channels.
    assert set(diff["attribution"]) == {
        "walk_latency", "replay_release", "insertion_policy"}
    assert diff["attributed"] == sum(diff["attribution"].values())
    assert diff["coverage"] >= 0.8


def test_requests_align_one_to_one(diff):
    req = diff["requests"]
    # Same trace, same seed: every ROI request exists in both runs.
    assert req["aligned"] > 0
    assert req["only_a"] == 0 and req["only_b"] == 0
    for mover in req["top_movers"]:
        assert mover["delta"] == mover["latency_a"] - mover["latency_b"]


def test_walk_matrix_shows_both_runs(diff):
    assert set(diff["walk_matrix"]) == {"a", "b"}
    assert diff["walk_matrix"]["a"]  # the baseline run definitely walked


def test_render_trace_diff(diff):
    text = render_trace_diff(diff)
    assert "cycle-delta attribution" in text
    assert "walk_latency" in text
    assert "total attributed" in text
    assert "aligned requests" in text


def test_misaligned_benchmarks_rejected(baseline_doc):
    other = api.trace("tc", **RUN_KW)
    with pytest.raises(TraceAlignmentError, match="disagree on benchmark"):
        trace_diff(baseline_doc, other)


def test_misaligned_sampling_rejected(baseline_doc):
    sampled = api.trace("pr", sample=4, **RUN_KW)
    with pytest.raises(TraceAlignmentError, match="sample_every"):
        trace_diff(baseline_doc, sampled)


def test_missing_cycles_rejected(baseline_doc):
    stripped = dict(baseline_doc,
                    manifest={k: v for k, v in
                              baseline_doc["manifest"].items()
                              if k != "simulated"})
    with pytest.raises(TraceAlignmentError, match="cycle totals"):
        trace_diff(stripped, stripped)


# ----------------------------------------------------------------------
# Analysis consumers over real documents
# ----------------------------------------------------------------------
def test_summary_renders(baseline_doc):
    text = summarize(baseline_doc)
    assert "latency by span name" in text
    assert "hottest PCs" in text
    assert "walk depth x leaf hit level" in text


def test_render_trace_limits(baseline_doc):
    text = render_trace(baseline_doc, limit=3)
    assert "more requests" in text
    assert text.count("#") >= 3


def test_critical_path_descends_to_latest_child(baseline_doc):
    index = TraceIndex(baseline_doc)
    # A walked request: its critical path must pass through the walk.
    root = next(r for r in index.roots
                if index.named_child(r["id"], "translate") is not None
                and index.named_child(
                    index.named_child(r["id"], "translate")["id"],
                    "walk") is not None)
    path = critical_path(baseline_doc, root["id"])
    assert path[0] is index.by_id[root["id"]]
    for parent, child in zip(path, path[1:]):
        assert child["parent"] == parent["id"]
        assert child["name"] != "stall"
    leaf = path[-1]
    assert index.root_of(leaf)["id"] == root["id"]
    # The chain's completion bounds the request's completion.
    assert leaf["end"] <= root["end"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_trace_diff(tmp_path, capsys):
    base = tmp_path / "base.json"
    enh = tmp_path / "enh.json"
    api.trace("pr", path=base, **RUN_KW)
    api.trace("pr", path=enh, enhancements="full", **RUN_KW)
    assert main(["trace", "diff", str(base), str(enh)]) == 0
    out = capsys.readouterr().out
    assert "cycle-delta attribution" in out
    assert "replay_release" in out


def test_cli_trace_summary_and_render(tmp_path, capsys):
    path = tmp_path / "t.json"
    api.trace("pr", path=path, **RUN_KW)
    assert main(["trace", "summary", str(path)]) == 0
    assert "latency by span name" in capsys.readouterr().out
    perfetto = tmp_path / "p.json"
    assert main(["trace", "render", str(path), "--limit", "2",
                 "--perfetto", str(perfetto)]) == 0
    captured = capsys.readouterr()
    assert "#0" in captured.out
    assert perfetto.exists()


def test_cli_trace_rejects_bad_input(tmp_path, capsys):
    missing = tmp_path / "nope.json"
    assert main(["trace", "summary", str(missing)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_run_with_trace(tmp_path, capsys):
    path = tmp_path / "run_trace.json"
    assert main(["run", "pr", "--instructions", "12000", "--warmup",
                 "2000", "--seed", "7", "--trace", str(path),
                 "--trace-sample", "3"]) == 0
    out = capsys.readouterr().out
    assert "schema-validated" in out
    assert path.exists()
