"""Direct tests for the steppable ThreadState engine."""

import numpy as np
import pytest

from repro.core.engine import ThreadState
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, Trace


def make_trace(records):
    ips = np.array([r[0] for r in records], dtype=np.int64)
    kinds = np.array([r[1] for r in records], dtype=np.int8)
    addrs = np.array([r[2] for r in records], dtype=np.int64)
    return Trace(ips, kinds, addrs)


def build_thread(records, rob=8, dispatch=2, retire=2, warmup=0):
    cfg = default_config()
    return ThreadState(make_trace(records), MemoryHierarchy(cfg),
                       rob_entries=rob, dispatch_width=dispatch,
                       retire_width=retire, warmup=warmup)


def test_thread_steps_to_completion():
    t = build_thread([(0x400, KIND_NONMEM, 0)] * 20)
    while not t.finished:
        t.step()
    assert t.index == 20
    assert t.roi_instructions == 20
    assert t.roi_cycles >= 10  # 2-wide dispatch floor


def test_dispatch_width_bounds_throughput():
    t = build_thread([(0x400, KIND_NONMEM, 0)] * 100, rob=1000,
                     dispatch=2, retire=2)
    while not t.finished:
        t.step()
    # 2-wide: at least 50 cycles for 100 instructions.
    assert t.roi_cycles >= 50


def test_rob_occupancy_blocks_dispatch():
    """A long-latency load at the head throttles a tiny ROB."""
    records = [(0x500, KIND_LOAD, 0x1000_0000)]
    records += [(0x400, KIND_NONMEM, 0)] * 50
    small = build_thread(records, rob=4)
    while not small.finished:
        small.step()
    big = build_thread(records, rob=512)
    while not big.finished:
        big.step()
    assert small.roi_cycles >= big.roi_cycles


def test_warmup_boundary_marks_roi():
    t = build_thread([(0x400, KIND_NONMEM, 0)] * 100, warmup=40)
    while not t.finished:
        t.step()
    assert t.crossed_warmup
    assert t.roi_instructions == 60


def test_stall_accounting_only_counts_roi():
    records = [(0x500, KIND_LOAD, 0x1000_0000)]  # in warmup
    records += [(0x400, KIND_NONMEM, 0)] * 99
    t = build_thread(records, warmup=50)
    while not t.finished:
        t.step()
    assert t.stalls.total_stall_cycles() == 0
