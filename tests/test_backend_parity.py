"""Cross-backend differential harness: ``numpy`` must be bit-identical.

The vectorized batch backend (:mod:`repro.core.batch_engine`) promises
*bit-identity* with the reference scalar core -- not statistical
closeness.  This suite pins that promise three ways:

* a 23-configuration oracle matrix (benchmark x enhancement stack x
  replacement x inclusion x huge pages x prefetchers x ideal/comparison
  modes x ROI geometry) compared on the full flattened counter surface
  of :func:`repro.validate.oracle.hierarchy_counters`;
* every checked-in ``SYN-*`` / ``RL-*`` scenario document, run under
  both backends through :func:`repro.scenarios.run_scenario`;
* an engagement check that the eligible matrix rows really exercised the
  vector path (a backend that silently always falls back to the scalar
  core would pass any parity test).
"""

from __future__ import annotations

import pytest

from repro.core.engine import make_core
from repro.params import SimConfig, default_config
from repro.scenarios import list_scenarios, load_scenario, run_scenario
from repro.uncore.hierarchy import MemoryHierarchy
from repro.validate.oracle import diff_counters, hierarchy_counters
from repro.workloads.registry import make_trace


def _ideal(**flags):
    from repro.params import IdealConfig
    return IdealConfig(**flags)


def _cfg(scale=64, **overrides) -> SimConfig:
    return default_config(scale).with_(**overrides)


#: The oracle matrix: (name, base config, benchmark, instructions,
#: warmup, seed).  ``vector`` marks rows the batch backend should run
#: without falling back to the scalar core (used by the engagement
#: check); fallback rows still assert parity -- trivially for the
#: counters, non-trivially for the routing logic.
MATRIX = [
    # -- baselines across benchmarks, varied ROI geometry --------------
    ("pr-base", _cfg(), "pr", 4000, 500, 1, True),
    ("radii-base", _cfg(), "radii", 4000, 500, 2, True),
    ("canneal-base", _cfg(), "canneal", 4000, 500, 3, True),
    ("xalancbmk-base", _cfg(), "xalancbmk", 4000, 500, 1, True),
    ("compute-base", _cfg(), "compute", 4000, 500, 1, True),
    ("mcf-base", _cfg(), "mcf", 4000, 500, 1, True),
    ("pr-nowarmup", _cfg(), "pr", 3000, 0, 1, True),
    ("pr-all-warmup", _cfg(), "pr", 2000, 2000, 1, True),
    # -- enhancement stacks (paper's cumulative order) ------------------
    ("pr-tdrrip", _cfg(enhancements="t_drrip"), "pr", 4000, 500, 1, True),
    ("pr-tship", _cfg(enhancements="t_ship"), "pr", 4000, 500, 1, True),
    ("canneal-atp", _cfg(enhancements="atp"), "canneal", 4000, 500, 1, True),
    ("pr-full", _cfg(enhancements="full"), "pr", 4000, 500, 1, True),
    ("radii-full", _cfg(enhancements="full"), "radii", 4000, 500, 2, True),
    # -- replacement / inclusion / ideal-mode variants ------------------
    ("canneal-llc-lru", _cfg(llc=default_config(64).llc.scaled(1)),
     "canneal", 4000, 500, 1, True),
    ("pr-inclusive", _cfg(llc_inclusion="inclusive"), "pr", 4000, 500, 1,
     True),
    ("xalancbmk-full-incl",
     _cfg(enhancements="full", llc_inclusion="inclusive"), "xalancbmk",
     4000, 500, 1, True),
    ("radii-ideal-llc", _cfg(ideal=_ideal(llc_translations=True)),
     "radii", 4000, 500, 1, True),
    ("mcf-ideal-l2c", _cfg(ideal=_ideal(l2c_replays=True)),
     "mcf", 4000, 500, 1, True),
    # -- scale variants -------------------------------------------------
    ("pr-scale16", _cfg(scale=16), "pr", 4000, 500, 1, True),
    # -- static-fallback configurations (scalar routing must be exact) --
    ("pr-hugepage", _cfg(huge_page_policy="gather_region"),
     "pr", 4000, 500, 1, False),
    ("canneal-cbpred", _cfg(comparison="cbpred"), "canneal", 4000, 500, 1,
     False),
    ("xalancbmk-l1d-pf", _cfg(l1d_prefetcher="next_line"),
     "xalancbmk", 4000, 500, 1, False),
    ("compute-frontend", _cfg(model_frontend=True), "compute", 4000, 500,
     1, False),
]

assert len(MATRIX) == 23, "the oracle matrix is pinned at 23 configs"

#: Miss-dominated companion matrix: scale-16 geometry shrinks the DTLB
#: and L1D until most windows carry a real miss cohort, so these rows
#: drive the batched miss-cascade kernels (cohort walk precompute,
#: MSHR-merge fast path, scalar excursions) rather than the hit path the
#: base matrix mostly exercises.  Each row must stay vector-eligible AND
#: actually form walk cohorts -- asserted below, not assumed.
MISS_MATRIX = [
    ("pr-s16-deep", _cfg(scale=16), "pr", 8000, 1000, 1),
    ("pr-s16-full", _cfg(scale=16, enhancements="full"), "pr",
     8000, 1000, 1),
    ("mcf-s16-atp-tempo", _cfg(scale=16, enhancements="full"), "mcf",
     8000, 1000, 2),
    ("canneal-s16-spp", _cfg(scale=16, l2c_prefetcher="spp"), "canneal",
     8000, 1000, 3),
    ("radii-s16-nextline", _cfg(scale=16, l2c_prefetcher="next_line"),
     "radii", 6000, 500, 1),
]


@pytest.mark.parametrize("name,cfg,bench,instructions,warmup,seed",
                         MISS_MATRIX, ids=[row[0] for row in MISS_MATRIX])
def test_miss_dominated_bit_identical(name, cfg, bench, instructions,
                                      warmup, seed):
    scalar, _ = _run(cfg.with_(backend="python"), bench,
                     instructions, warmup, seed)
    vector_counters, core = _run(cfg.with_(backend="numpy"), bench,
                                 instructions, warmup, seed)
    assert diff_counters(scalar, vector_counters) == {}
    assert core.last_fallback_reason is None
    stats = core.batch_stats
    # Miss-domination is the point of these rows: the drain must have
    # formed page-walk cohorts and taken scalar excursions, otherwise
    # the batched miss-cascade kernels went untested.
    assert stats.windows > 0
    assert stats.walk_cohort > 0
    assert stats.scalar_excursions > 0
    assert stats.precomputed_walks > 0


def _run(config: SimConfig, bench: str, instructions: int,
         warmup: int, seed: int):
    """One direct core run; returns (counter dict, core object)."""
    trace = make_trace(bench, instructions + warmup,
                       scale=config_scale(config), seed=seed)
    hierarchy = MemoryHierarchy(config)
    core = make_core(config, hierarchy)
    result = core.run(trace, warmup=warmup)
    return hierarchy_counters(hierarchy, result), core


def config_scale(config: SimConfig) -> int:
    """Recover the workload scale from the STLB's scaled geometry."""
    return 2048 * 16 // (config.stlb.num_sets * config.stlb.ways)


@pytest.mark.parametrize(
    "name,cfg,bench,instructions,warmup,seed,vector",
    MATRIX, ids=[row[0] for row in MATRIX])
def test_oracle_matrix_bit_identical(name, cfg, bench, instructions,
                                     warmup, seed, vector):
    scalar, _ = _run(cfg.with_(backend="python"), bench,
                     instructions, warmup, seed)
    vector_counters, core = _run(cfg.with_(backend="numpy"), bench,
                                 instructions, warmup, seed)
    assert diff_counters(scalar, vector_counters) == {}
    if vector:
        # The eligible rows must actually exercise the vector path --
        # otherwise this file would pass with a backend that always
        # delegates to the scalar core.
        assert core.last_fallback_reason is None
    else:
        assert core.last_fallback_reason is not None


@pytest.mark.parametrize("scenario", list_scenarios())
def test_scenario_library_backend_parity(scenario):
    doc = load_scenario(scenario)
    records = {}
    for backend in ("python", "numpy"):
        cfg = default_config(doc.scale).with_(backend=backend)
        result = run_scenario(doc, instructions=3000, warmup=500,
                              config=cfg)
        record = result.jsonl_record(timestamp=False)
        # The run key hashes the config, so it differs by backend --
        # everything the simulation *measured* must not.
        for volatile in ("run_key", "config_hash"):
            record.pop(volatile)
        records[backend] = record
    assert records["python"] == records["numpy"]


def test_scenario_library_is_complete():
    names = list_scenarios()
    assert set(names) >= {"SYN-01-STLB-THRASH", "SYN-02-PTE-REUSE-CLIFF",
                          "SYN-03-REPLAY-DEAD-STREAMS", "RL-01-GRAPH-SOUP",
                          "RL-02-PHASED-PIPELINE"}


def test_high_address_trace_backend_parity():
    """Addresses above 2**53 survive both backends bit-identically.

    Float64 holds 53 mantissa bits; an accidental float round-trip in
    the vectorized path would silently corrupt these addresses and the
    counter comparison would diverge (companion unit tests:
    ``tests/test_batch_kernels.py``)."""
    import numpy as np

    from repro.vm.address import make_va
    from repro.workloads.trace import KIND_LOAD, KIND_STORE, Trace

    rng = __import__("random").Random(9)
    n = 3000
    ips = np.full(n, 0x400000, dtype=np.int64)
    kinds = np.zeros(n, dtype=np.int8)
    addrs = np.zeros(n, dtype=np.int64)
    deps = np.zeros(n, dtype=np.int8)
    for i in range(n):
        kinds[i] = KIND_LOAD if rng.random() < 0.7 else KIND_STORE
        # Top-level index 511 puts the VA near 2**57, far above 2**53.
        addrs[i] = make_va([511, 0, 0, rng.randrange(4), rng.randrange(64)],
                           offset=rng.randrange(512) * 8)
    trace = Trace(ips, kinds, addrs, name="high-va", deps=deps)
    assert int(addrs.min()) > 2 ** 53

    counters = {}
    for backend in ("python", "numpy"):
        cfg = default_config(64).with_(backend=backend)
        hierarchy = MemoryHierarchy(cfg)
        core = make_core(cfg, hierarchy)
        result = core.run(trace, warmup=500)
        counters[backend] = hierarchy_counters(hierarchy, result)
        if backend == "numpy":
            assert core.last_fallback_reason is None
    assert diff_counters(counters["python"], counters["numpy"]) == {}


def test_runtime_instrumentation_forces_scalar_core():
    """Attached per-event hooks (sampler) must route to the scalar core."""
    from repro.experiments.runner import run_benchmark

    cfg = default_config(64).with_(backend="numpy")
    observed = run_benchmark("pr", config=cfg, instructions=2000,
                             warmup=200, scale=64, seed=1,
                             sample_interval=500)
    plain = run_benchmark("pr", config=default_config(64),
                          instructions=2000, warmup=200, scale=64, seed=1,
                          sample_interval=500)
    assert observed.summary() == plain.summary()
    assert observed.intervals == plain.intervals
