"""Tests for the trace-analysis utilities."""

import numpy as np
import pytest

from repro.workloads.analysis import (leaf_pte_lines, memory_addresses,
                                      page_reuse_histogram, stride_profile,
                                      stlb_reach_ratio, summarize,
                                      working_set)
from repro.workloads.registry import make_trace
from repro.workloads.trace import KIND_LOAD, KIND_NONMEM, Trace


def simple_trace(addrs, kinds=None):
    n = len(addrs)
    return Trace(np.zeros(n, dtype=np.int64),
                 np.array(kinds if kinds is not None
                          else [KIND_LOAD] * n, dtype=np.int8),
                 np.array(addrs, dtype=np.int64))


def test_memory_addresses_skips_nonmem():
    t = simple_trace([0x1000, 0, 0x2000],
                     kinds=[KIND_LOAD, KIND_NONMEM, KIND_LOAD])
    assert list(memory_addresses(t)) == [0x1000, 0x2000]


def test_working_set_counts():
    t = simple_trace([0x1000, 0x1040, 0x2000])
    ws = working_set(t)
    assert ws["pages"] == 2
    assert ws["lines"] == 3


def test_working_set_empty():
    t = simple_trace([0], kinds=[KIND_NONMEM])
    assert working_set(t) == {"pages": 0, "lines": 0}


def test_page_reuse_histogram():
    t = simple_trace([0x1000] * 5 + [0x2000])
    h = page_reuse_histogram(t, buckets=(1, 4))
    assert h["<=1"] == 1    # 0x2000 touched once
    assert h[">4"] == 1     # 0x1000 touched five times


def test_stride_profile_detects_dominant_stride():
    t = simple_trace(list(range(0, 640, 64)))
    top = stride_profile(t, top=1)
    assert top[0][0] == 64
    assert top[0][1] == pytest.approx(1.0)


def test_leaf_pte_lines_groups_eight_pages():
    pages = [0x10000000 + (i << 12) for i in range(16)]
    t = simple_trace(pages)
    assert leaf_pte_lines(t) == 2


def test_stlb_reach_ratio():
    t = simple_trace([i << 12 for i in range(256)])
    assert stlb_reach_ratio(t, 128) == pytest.approx(2.0)


def test_summarize_on_real_benchmark():
    t = make_trace("pr", 5000)
    s = summarize(t)
    assert s["instructions"] == 5000
    assert s["loads_per_kilo"] > 100
    assert s["stlb_reach_ratio"] > 1.0  # pr cannot fit in the STLB
    assert s["leaf_pte_lines"] <= s["pages"]
