"""Tests for the SMT and multi-core models."""

import pytest

from repro.core.multicore import MultiCore
from repro.core.smt import SMTCore
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.registry import make_trace


def test_smt_requires_two_traces():
    cfg = default_config()
    smt = SMTCore(cfg, MemoryHierarchy(cfg))
    with pytest.raises(ValueError):
        smt.run([make_trace("tc", 100)])


def test_smt_runs_both_threads():
    cfg = default_config()
    smt = SMTCore(cfg, MemoryHierarchy(cfg))
    traces = [make_trace("tc", 2000, seed=1), make_trace("pr", 2000, seed=2)]
    results = smt.run(traces, warmup=500)
    assert len(results) == 2
    for r in results:
        assert r.instructions == 1500
        assert r.cycles > 0
        assert r.ipc > 0


def test_smt_slower_than_solo():
    """Sharing the hierarchy must cost each thread something."""
    cfg = default_config()
    from repro.core.ooo_core import OOOCore
    solo_h = MemoryHierarchy(cfg)
    t = make_trace("pr", 4000, seed=1)
    solo = OOOCore(cfg, solo_h).run(t, warmup=500)

    smt = SMTCore(cfg, MemoryHierarchy(cfg))
    both = smt.run([make_trace("pr", 4000, seed=1),
                    make_trace("pr", 4000, seed=2)], warmup=500)
    assert both[0].cycles > solo.cycles


def test_multicore_validates_inputs():
    with pytest.raises(ValueError):
        MultiCore(default_config(), 0)
    mc = MultiCore(default_config(), 2)
    with pytest.raises(ValueError):
        mc.run([make_trace("tc", 100)])


def test_multicore_shares_llc_and_dram():
    mc = MultiCore(default_config(), 4)
    assert all(h.llc is mc.llc for h in mc.hierarchies)
    assert all(h.dram is mc.dram for h in mc.hierarchies)
    l2cs = {id(h.l2c) for h in mc.hierarchies}
    assert len(l2cs) == 4  # private L2Cs


def test_multicore_address_spaces_disjoint():
    """Different cores' pages must get different physical frames."""
    mc = MultiCore(default_config(), 2)
    va = 0x4000_0000_0000
    f0 = mc.hierarchies[0].page_table.translate(va)
    f1 = mc.hierarchies[1].page_table.translate(va)
    assert f0 != f1


def test_multicore_runs_all_cores():
    mc = MultiCore(default_config(), 2)
    traces = [make_trace("tc", 1500, seed=1), make_trace("cc", 1500, seed=2)]
    results = mc.run(traces, warmup=300)
    assert len(results) == 2
    assert all(r.instructions == 1200 for r in results)
    assert mc.llc.stats.total_misses() > 0
