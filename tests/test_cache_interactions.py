"""Cross-feature cache interaction tests: T-policies with writebacks,
ideal modes with ATP, multi-channel DRAM mapping, IPCP edge cases."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import make_policy
from repro.memsys.dram import DRAM
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import (CacheConfig, DRAMConfig, EnhancementConfig,
                          IdealConfig, default_config)
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


class Null:
    def access(self, req):
        req.served_by = "DRAM"
        return req.cycle + 100


def test_tdrrip_translations_survive_replay_storm():
    """The point of Fig 9/10: a flood of replay fills must not evict the
    pinned leaf translations at the L2C."""
    cache = Cache(CacheConfig("L2C", 64 * 4 * 2, 4, 10), Null(),
                  policy=make_policy("t_drrip", 2, 4))
    pte_line = 0
    cache.access(MemoryRequest(address=pte_line, cycle=0,
                               access_type=AccessType.TRANSLATION,
                               pt_level=1))
    # 20 replay fills into the same set (line stride = num_sets).
    for i in range(1, 21):
        cache.access(MemoryRequest(address=(i * 2) << 6, cycle=i * 100,
                                   is_replay=True))
    assert cache.contains(pte_line)


def test_plain_drrip_translations_do_not_survive():
    cache = Cache(CacheConfig("L2C", 64 * 4 * 2, 4, 10), Null(),
                  policy=make_policy("drrip", 2, 4))
    pte_line = 0
    cache.access(MemoryRequest(address=pte_line, cycle=0,
                               access_type=AccessType.TRANSLATION,
                               pt_level=1))
    for i in range(1, 41):
        cache.access(MemoryRequest(address=(i * 2) << 6, cycle=i * 100,
                                   is_replay=True))
    assert not cache.contains(pte_line)


def test_dirty_translation_eviction_writes_back():
    """Translation lines can be dirty (accessed/dirty PTE bits); the
    machinery must handle a dirty PTE eviction like any other."""
    cache = Cache(CacheConfig("T", 64 * 2 * 1, 2, 10), Null())
    cache.access(MemoryRequest(address=0, cycle=0,
                               access_type=AccessType.TRANSLATION,
                               pt_level=1))
    block = cache.block_for(0)
    block.dirty = True  # walker set the accessed bit
    stride = cache.num_sets * 64
    cache.access(MemoryRequest(address=stride, cycle=100))
    cache.access(MemoryRequest(address=2 * stride, cycle=200))
    assert cache.writebacks_issued >= 1


def test_ideal_mode_with_atp_does_not_double_serve():
    """Fig 2's ideal LLC plus ATP: both paths answer translations; the
    combination must still be self-consistent (no crash, sane timing)."""
    cfg = default_config().with_(
        ideal=IdealConfig(llc_translations=True),
        enhancements=EnhancementConfig(t_drrip=True, t_ship=True,
                                       newsign=True, atp=True))
    h = MemoryHierarchy(cfg)
    for i in range(50):
        res = h.load(make_va([1, 2, 3, 4, i % 32], 0x10), cycle=i * 500)
        assert res.data_done >= res.translation_done


def test_multichannel_dram_distributes_rows():
    dram = DRAM(DRAMConfig(channels=2, banks_per_channel=4))
    rows = 8
    lines_per_row = dram.config.row_buffer_bytes >> 6
    channels = {dram._map(r * lines_per_row)[0] for r in range(rows)}
    assert channels == {0, 1}


def test_ipcp_prefetch_to_unmapped_page_dropped():
    cfg = default_config().with_(l1d_prefetcher="ipcp")
    h = MemoryHierarchy(cfg)
    va = make_va([1, 2, 3, 4, 0])
    # Strided loads marching toward unmapped territory: cross-page
    # candidates to untouched pages must be silently dropped.
    for i in range(20):
        h.load(va + i * 2048, cycle=i * 300, ip=0x42)
    assert h.ipcp.issued >= 0  # and no exception was raised


def test_writeback_of_replay_block_classified():
    """Evicted dirty replay blocks write back as WRITEBACK, not replay."""
    cache = Cache(CacheConfig("T", 64 * 2 * 1, 2, 10), Null())
    cache.access(MemoryRequest(address=0, cycle=0,
                               access_type=AccessType.STORE,
                               is_replay=True))
    stride = cache.num_sets * 64
    cache.access(MemoryRequest(address=stride, cycle=100))
    mem_types = []
    original = cache.next_level.access

    class Recorder:
        def access(self, req):
            mem_types.append(req.access_type)
            req.served_by = "DRAM"
            return req.cycle + 100

    cache.next_level = Recorder()
    cache.access(MemoryRequest(address=2 * stride, cycle=200))
    assert AccessType.WRITEBACK in mem_types
