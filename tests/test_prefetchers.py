"""Tests for the prefetcher suite."""

import pytest

from repro.memsys.request import AccessType, MemoryRequest
from repro.prefetch import (BingoPrefetcher, IPCPPrefetcher,
                            IPStridePrefetcher, ISBPrefetcher,
                            NextLinePrefetcher, SPPPrefetcher,
                            make_l2c_prefetcher)
from repro.prefetch.base import LINES_PER_PAGE, clamp_to_page, same_page


def load(line, ip=0x400):
    return MemoryRequest(address=line << 6, cycle=0, ip=ip)


def test_same_page_helper():
    assert same_page(0, LINES_PER_PAGE - 1)
    assert not same_page(0, LINES_PER_PAGE)


def test_clamp_to_page_drops_crossers():
    base = 10
    out = clamp_to_page(base, [11, 12, LINES_PER_PAGE + 1, -1])
    assert out == [11, 12]


def test_next_line_prefetches_within_page():
    pf = NextLinePrefetcher(degree=2)
    assert pf.operate(load(10), hit=False) == [11, 12]
    # At the page edge: cross-page candidates are clamped.
    edge = LINES_PER_PAGE - 1
    assert pf.operate(load(edge), hit=False) == []


def test_ip_stride_learns_constant_stride():
    pf = IPStridePrefetcher(degree=2)
    out = []
    for i in range(6):
        out = pf.operate(load(10 + 3 * i, ip=0x42), hit=False)
    assert out == [10 + 15 + 3, 10 + 15 + 6]


def test_ip_stride_ignores_random():
    pf = IPStridePrefetcher()
    seq = [5, 17, 2, 33, 9, 21]
    outs = [pf.operate(load(l, ip=0x42), hit=False) for l in seq]
    assert all(not o for o in outs)


def test_spp_learns_intra_page_stride():
    pf = SPPPrefetcher()
    fired = False
    for i in range(12):
        out = pf.operate(load(100 * LINES_PER_PAGE + 2 * i), hit=False)
        if out:
            fired = True
            assert all(same_page(100 * LINES_PER_PAGE, c) for c in out)
    assert fired


def test_spp_never_crosses_page():
    pf = SPPPrefetcher()
    for page in range(3):
        base = page * LINES_PER_PAGE
        for i in range(LINES_PER_PAGE // 2):
            out = pf.operate(load(base + 2 * i), hit=False)
            for c in out:
                assert same_page(base, c)


def test_bingo_replays_recorded_footprint():
    pf = BingoPrefetcher()
    region_lines = 32
    base = 50 * region_lines
    footprint = [0, 3, 7, 12]
    # Visit the region, establishing a footprint, then retire it.
    for off in footprint:
        pf.operate(load(base + off, ip=0x42), hit=False)
    pf._retire_region(base // region_lines)
    # Re-trigger from the same PC+offset in a different region.
    other = 90 * region_lines
    out = pf.operate(load(other + 0, ip=0x42), hit=False)
    assert set(out) == {other + 3, other + 7, other + 12}


def test_isb_replays_temporal_stream():
    pf = ISBPrefetcher()
    stream = [500, 9123, 77, 4096, 222]
    # First pass trains the structural mapping (miss stream, one PC).
    for line in stream:
        pf.operate(load(line, ip=0x42), hit=False)
    # Second pass: the head of the stream should predict its successors.
    out = pf.operate(load(stream[0], ip=0x42), hit=False)
    assert out[:2] == stream[1:3]


def test_isb_streams_are_pc_local():
    pf = ISBPrefetcher()
    for line in [10, 20, 30]:
        pf.operate(load(line, ip=0xA), hit=False)
    for line in [100, 200]:
        pf.operate(load(line, ip=0xB), hit=False)
    out = pf.operate(load(10, ip=0xA), hit=False)
    assert 100 not in out and 200 not in out


def test_ipcp_constant_stride_crosses_pages():
    pf = IPCPPrefetcher()
    stride = LINES_PER_PAGE // 2  # crosses a page every other access
    out = []
    for i in range(8):
        out = pf.operate_virtual(0x42, 1000 + i * stride, hit=True)
    assert out  # stride detected
    assert pf.cross_page_issued > 0


def test_ipcp_global_stream_fallback():
    pf = IPCPPrefetcher()
    out = []
    # Different IP each access, but a steady global stride.
    for i in range(8):
        out = pf.operate_virtual(0x1000 + i, 500 + i * 2, hit=True)
    assert out == [500 + 7 * 2 + 2, 500 + 7 * 2 + 4]


def test_registry_lookup():
    assert make_l2c_prefetcher("none") is None
    assert isinstance(make_l2c_prefetcher("spp"), SPPPrefetcher)
    with pytest.raises(ValueError):
        make_l2c_prefetcher("stride9000")
