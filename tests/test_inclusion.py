"""Tests for the inclusive-LLC mode."""

import pytest

from repro.cache.cache import Cache
from repro.memsys.request import MemoryRequest
from repro.params import CacheConfig, EnhancementConfig, default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


class Null:
    def access(self, req):
        req.served_by = "DRAM"
        return req.cycle + 100


def test_invalidate_api():
    cache = Cache(CacheConfig("T", 2 * 64 * 2, 2, 10), Null())
    cache.access(MemoryRequest(address=0x1000, cycle=0))
    line = 0x1000 >> 6
    assert cache.contains(line)
    assert cache.invalidate(line)
    assert not cache.contains(line)
    assert not cache.invalidate(line)  # second time: not resident


def test_back_invalidation_on_eviction():
    lower = Cache(CacheConfig("LLC", 2 * 64 * 1, 1, 20), Null())
    upper = Cache(CacheConfig("L2C", 2 * 64 * 2, 2, 10), lower)
    lower.back_invalidate_targets.append(upper)
    stride = lower.num_sets * 64
    upper.access(MemoryRequest(address=0x0, cycle=0))       # fills both
    assert upper.contains(0) and lower.contains(0)
    # Force the LLC (1-way) to evict line 0 by filling its set.
    lower.access(MemoryRequest(address=stride, cycle=1000))
    assert not lower.contains(0)
    assert not upper.contains(0)  # back-invalidated
    assert lower.back_invalidations == 1


def test_hierarchy_inclusive_wiring():
    cfg = default_config().replace(llc_inclusion="inclusive")
    h = MemoryHierarchy(cfg)
    assert h.l2c in h.llc.back_invalidate_targets
    assert h.l1d in h.llc.back_invalidate_targets
    h.load(make_va([1, 2, 3, 4, 5]), cycle=0)  # runs end to end


def test_hierarchy_rejects_unknown_inclusion():
    cfg = default_config().replace(llc_inclusion="exclusive")
    with pytest.raises(ValueError):
        MemoryHierarchy(cfg)


def test_inclusive_llc_still_benefits_from_enhancements():
    """The T-policies must survive inclusion: pinning translations at the
    LLC also *protects* their L2C copies from back-invalidation."""
    from repro.experiments.runner import run_benchmark
    base_cfg = default_config().replace(llc_inclusion="inclusive")
    enh_cfg = base_cfg.replace(enhancements=EnhancementConfig.full())
    base = run_benchmark("canneal", config=base_cfg, instructions=12_000,
                         warmup=3_000)
    enh = run_benchmark("canneal", config=enh_cfg, instructions=12_000,
                        warmup=3_000)
    assert enh.speedup_over(base) > 0.99
