"""Tests for the inclusive-LLC mode."""

import pytest

from repro.cache.cache import Cache
from repro.memsys.request import MemoryRequest
from repro.params import CacheConfig, EnhancementConfig, default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


class Null:
    def access(self, req):
        req.served_by = "DRAM"
        return req.cycle + 100


def test_invalidate_api():
    cache = Cache(CacheConfig("T", 2 * 64 * 2, 2, 10), Null())
    cache.access(MemoryRequest(address=0x1000, cycle=0))
    line = 0x1000 >> 6
    assert cache.contains(line)
    assert cache.invalidate(line)
    assert not cache.contains(line)
    assert not cache.invalidate(line)  # second time: not resident


def test_back_invalidation_on_eviction():
    lower = Cache(CacheConfig("LLC", 2 * 64 * 1, 1, 20), Null())
    upper = Cache(CacheConfig("L2C", 2 * 64 * 2, 2, 10), lower)
    lower.back_invalidate_targets.append(upper)
    stride = lower.num_sets * 64
    upper.access(MemoryRequest(address=0x0, cycle=0))       # fills both
    assert upper.contains(0) and lower.contains(0)
    # Force the LLC (1-way) to evict line 0 by filling its set.
    lower.access(MemoryRequest(address=stride, cycle=1000))
    assert not lower.contains(0)
    assert not upper.contains(0)  # back-invalidated
    assert lower.back_invalidations == 1


def test_hierarchy_inclusive_wiring():
    cfg = default_config().with_(llc_inclusion="inclusive")
    h = MemoryHierarchy(cfg)
    assert h.l2c in h.llc.back_invalidate_targets
    assert h.l1d in h.llc.back_invalidate_targets
    h.load(make_va([1, 2, 3, 4, 5]), cycle=0)  # runs end to end


def test_hierarchy_rejects_unknown_inclusion():
    cfg = default_config().with_(llc_inclusion="exclusive")
    with pytest.raises(ValueError):
        MemoryHierarchy(cfg)


def test_inclusive_llc_still_benefits_from_enhancements():
    """The T-policies must survive inclusion: pinning translations at the
    LLC also *protects* their L2C copies from back-invalidation."""
    from repro.experiments.runner import run_benchmark
    base_cfg = default_config().with_(llc_inclusion="inclusive")
    enh_cfg = base_cfg.with_(enhancements=EnhancementConfig.full())
    base = run_benchmark("canneal", config=base_cfg, instructions=12_000,
                         warmup=3_000)
    enh = run_benchmark("canneal", config=enh_cfg, instructions=12_000,
                        warmup=3_000)
    assert enh.speedup_over(base) > 0.99


def test_invalidate_returns_dropped_block_with_dirty_bit():
    from repro.memsys.request import AccessType
    cache = Cache(CacheConfig("T", 2 * 64 * 2, 2, 10), Null())
    cache.access(MemoryRequest(address=0x1000, cycle=0,
                               access_type=AccessType.STORE))
    block = cache.invalidate(0x1000 >> 6)
    assert block is not None and block.dirty
    assert cache.invalidate(0x1000 >> 6) is None


def test_back_invalidation_of_dirty_upper_copy_issues_writeback():
    """Regression: evicting a clean LLC line whose upper-level copy is
    dirty used to drop the only dirty copy silently; the eviction must
    upgrade to a writeback."""
    from repro.memsys.request import AccessType

    class CountingNull(Null):
        def __init__(self):
            self.writebacks = 0

        def access(self, req):
            if req.access_type is AccessType.WRITEBACK:
                self.writebacks += 1
            return super().access(req)

    mem = CountingNull()
    lower = Cache(CacheConfig("LLC", 2 * 64 * 1, 1, 20), mem)
    upper = Cache(CacheConfig("L2C", 2 * 64 * 2, 2, 10), lower)
    lower.back_invalidate_targets.append(upper)
    stride = lower.num_sets * 64
    # Load through both levels, then dirty only the upper copy (stores
    # are satisfied at the upper level; the LLC copy stays clean).
    upper.access(MemoryRequest(address=0x0, cycle=0))
    upper.access(MemoryRequest(address=0x0, cycle=100,
                               access_type=AccessType.STORE))
    assert upper.block_for(0).dirty
    assert not lower.block_for(0).dirty
    # Evict the (clean) LLC copy: the dirty upper copy must reach memory.
    lower.access(MemoryRequest(address=stride, cycle=1000))
    assert not upper.contains(0)
    assert mem.writebacks == 1


def test_dropped_prefetch_does_not_install_upstream():
    """Regression: when a lower level drops a prefetch (flooded queue),
    upper levels used to install the line anyway -- manufacturing data
    out of nothing and, under an inclusive LLC, violating inclusion."""
    from repro.memsys.request import AccessType

    lower = Cache(CacheConfig("LLC", 4 * 64 * 1, 1, 20, mshr_entries=1),
                  Null())
    upper = Cache(CacheConfig("L2C", 4 * 64 * 2, 2, 10, mshr_entries=8),
                  lower)
    # Saturate the LLC's MSHR + prefetch queue (1 + 1 with one entry).
    lower.access(MemoryRequest(address=0x40, cycle=0))
    lower.access(MemoryRequest(address=0x80, cycle=0,
                               access_type=AccessType.PREFETCH))
    assert lower.mshr.occupancy(0) == 2
    pref = MemoryRequest(address=0x1000, cycle=0,
                         access_type=AccessType.PREFETCH)
    upper.access(pref)
    assert pref.dropped
    assert lower.prefetches_dropped == 1
    assert not lower.contains(0x1000 >> 6)
    assert not upper.contains(0x1000 >> 6)  # nothing installed upstream
