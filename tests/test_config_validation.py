"""Tests for configuration validation."""

import pytest

from repro.params import CacheConfig, TLBConfig


def test_cache_rejects_zero_ways():
    with pytest.raises(ValueError):
        CacheConfig("X", 1024, 0, 10)


def test_cache_rejects_misaligned_size():
    with pytest.raises(ValueError):
        CacheConfig("X", 1000, 4, 10)  # not a multiple of 64 * 4


def test_cache_rejects_zero_mshr():
    with pytest.raises(ValueError):
        CacheConfig("X", 1024, 4, 10, mshr_entries=0)


def test_cache_accepts_valid():
    c = CacheConfig("X", 64 * 4 * 2, 4, 10)
    assert c.num_sets == 2


def test_tlb_rejects_nonmultiple_entries():
    with pytest.raises(ValueError):
        TLBConfig("T", 10, 4, 1)


def test_tlb_rejects_zero_entries():
    with pytest.raises(ValueError):
        TLBConfig("T", 0, 4, 1)


def test_tlb_scaling_keeps_validity():
    t = TLBConfig("T", 2048, 16, 8)
    s = t.scaled(10_000)  # floor at `ways`
    assert s.entries == 16
