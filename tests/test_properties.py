"""Property-based tests (hypothesis) on the core data structures."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cache.cache import Cache
from repro.cache.replacement import available_policies, make_policy
from repro.memsys.mshr import MSHR
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import CacheConfig
from repro.stats.recall import RecallTracker


class NullMemory:
    def access(self, req):
        req.served_by = "DRAM"
        return req.cycle + 100


ACCESS_STRATEGY = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),      # line (small space)
        st.sampled_from(["load", "store", "leaf", "upper", "replay",
                         "prefetch"]),
        st.integers(min_value=0, max_value=1 << 20),  # ip
    ),
    min_size=1, max_size=200)


def build_request(line, kind, ip, cycle):
    addr = line << 6
    if kind == "load":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip)
    if kind == "store":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             access_type=AccessType.STORE)
    if kind == "replay":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             is_replay=True)
    if kind == "leaf":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             access_type=AccessType.TRANSLATION, pt_level=1,
                             replay_line_addr=line + 1000)
    if kind == "upper":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             access_type=AccessType.TRANSLATION, pt_level=4)
    return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                         access_type=AccessType.PREFETCH)


@pytest.mark.parametrize("policy_name", available_policies())
@settings(max_examples=25, deadline=None)
@given(accesses=ACCESS_STRATEGY)
def test_cache_invariants_under_random_traffic(policy_name, accesses):
    """For every policy: the lookup index stays consistent with block
    state, completions are causal, and no set holds duplicate lines."""
    config = CacheConfig("T", size_bytes=4 * 64 * 2, ways=2, latency=10,
                         mshr_entries=4, replacement="lru")
    cache = Cache(config, NullMemory(),
                  policy=make_policy(policy_name, 4, 2),
                  track_recall=True)
    cycle = 0
    for line, kind, ip in accesses:
        cycle += 7
        req = build_request(line, kind, ip, cycle)
        done = cache.access(req)
        assert done >= cycle + cache.latency  # causality

    for set_idx, blocks in enumerate(cache._sets):
        valid_lines = [b.line_addr for b in blocks if b.valid]
        assert len(valid_lines) == len(set(valid_lines))
        assert set(cache._lookup[set_idx].keys()) == set(valid_lines)
        for line_addr, way in cache._lookup[set_idx].items():
            assert blocks[way].line_addr == line_addr
            assert line_addr % cache.num_sets == set_idx


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=31),
                              st.integers(min_value=0, max_value=500)),
                    min_size=1, max_size=300))
def test_recall_tracker_counts_are_consistent(ops):
    """samples == resolved evictions; histogram sums to samples."""
    tracker = RecallTracker("t")
    for is_evict, set_idx, line in ops:
        if is_evict:
            tracker.on_evict(set_idx % 4, line)
        else:
            tracker.on_access(set_idx % 4, line)
    tracker.flush()
    assert sum(tracker.histogram) == tracker.samples


@settings(max_examples=50, deadline=None)
@given(fills=st.lists(st.tuples(st.integers(min_value=0, max_value=15),
                                st.integers(min_value=1, max_value=300)),
                      min_size=1, max_size=100))
def test_mshr_admission_never_negative_and_bounded(fills):
    mshr = MSHR(4)
    now = 0
    for line, latency in fills:
        now += 5
        delay = mshr.admission_delay(now)
        assert delay >= 0
        start = now + delay
        mshr.allocate(line, start + latency, start)
    # Occupancy of pending demand entries never exceeds capacity by more
    # than the duplicate-line slack (same line re-allocated overwrites).
    assert mshr.occupancy(now) <= 16


@settings(max_examples=30, deadline=None)
@given(seq=st.lists(st.integers(min_value=0, max_value=1 << 40),
                    min_size=1, max_size=200))
def test_rrpv_bounds_hold(seq):
    """RRPVs stay within [0, max] for RRIP policies under arbitrary mixes."""
    pol = make_policy("ship", 8, 4)
    from repro.cache.block import CacheBlock
    sets = [[CacheBlock() for _ in range(4)] for _ in range(8)]
    for addr in seq:
        line = addr >> 6
        set_idx = line % 8
        req = MemoryRequest(address=addr, cycle=0, ip=addr & 0xFFFF)
        blocks = sets[set_idx]
        way = next((w for w, b in enumerate(blocks) if b.valid
                    and b.line_addr == line), None)
        if way is not None:
            pol.on_hit(set_idx, way, req, blocks[way])
        else:
            victim = next((w for w, b in enumerate(blocks)
                           if not b.valid), None)
            if victim is None:
                victim = pol.victim(set_idx, req, blocks)
                pol.on_evict(set_idx, victim, blocks[victim])
            blocks[victim].reset_for_fill(line, 0)
            pol.on_fill(set_idx, victim, req, blocks[victim])
        for b in blocks:
            assert 0 <= b.rrpv <= pol.max_rrpv
