"""Property-based tests (hypothesis) on the core data structures."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cache.cache import Cache
from repro.cache.replacement import available_policies, make_policy
from repro.cache.store import CacheStore
from repro.memsys.mshr import MSHR
from repro.memsys.request import AccessType, MemoryRequest
from repro.params import CacheConfig
from repro.stats.recall import RecallTracker


class NullMemory:
    def access(self, req):
        req.served_by = "DRAM"
        return req.cycle + 100


ACCESS_STRATEGY = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=63),      # line (small space)
        st.sampled_from(["load", "store", "leaf", "upper", "replay",
                         "prefetch"]),
        st.integers(min_value=0, max_value=1 << 20),  # ip
    ),
    min_size=1, max_size=200)


def build_request(line, kind, ip, cycle):
    addr = line << 6
    if kind == "load":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip)
    if kind == "store":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             access_type=AccessType.STORE)
    if kind == "replay":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             is_replay=True)
    if kind == "leaf":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             access_type=AccessType.TRANSLATION, pt_level=1,
                             replay_line_addr=line + 1000)
    if kind == "upper":
        return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                             access_type=AccessType.TRANSLATION, pt_level=4)
    return MemoryRequest(address=addr, cycle=cycle, ip=ip,
                         access_type=AccessType.PREFETCH)


@pytest.mark.parametrize("policy_name", available_policies())
@settings(max_examples=25, deadline=None)
@given(accesses=ACCESS_STRATEGY)
def test_cache_invariants_under_random_traffic(policy_name, accesses):
    """For every policy: the lookup index stays consistent with block
    state, completions are causal, and no set holds duplicate lines."""
    config = CacheConfig("T", size_bytes=4 * 64 * 2, ways=2, latency=10,
                         mshr_entries=4, replacement="lru")
    cache = Cache(config, NullMemory(),
                  policy=make_policy(policy_name, 4, 2),
                  track_recall=True)
    cycle = 0
    for line, kind, ip in accesses:
        cycle += 7
        req = build_request(line, kind, ip, cycle)
        done = cache.access(req)
        assert done >= cycle + cache.latency  # causality

    store = cache.store
    all_valid_lines = []
    for set_idx in range(cache.num_sets):
        base = set_idx * cache.num_ways
        valid_lines = [store.line[base + w] for w in range(cache.num_ways)
                       if store.valid[base + w]]
        assert len(valid_lines) == len(set(valid_lines))
        for way in range(cache.num_ways):
            slot = base + way
            if store.valid[slot]:
                assert store.slot_of[store.line[slot]] == slot
                assert store.line[slot] % cache.num_sets == set_idx
        all_valid_lines.extend(valid_lines)
    assert set(store.slot_of) == set(all_valid_lines)
    assert len(store.slot_of) == len(all_valid_lines)


_BLOCK_FIELDS = ("line_addr", "valid", "dirty", "reused", "is_translation",
                 "is_leaf_translation", "is_replay", "is_prefetch",
                 "dead_on_hit", "signature", "rrpv", "fill_cycle")


@pytest.mark.parametrize("policy_name", available_policies())
@settings(max_examples=25, deadline=None)
@given(accesses=ACCESS_STRATEGY)
def test_store_round_trips_through_cacheblock(policy_name, accesses):
    """Slot-array state survives a round trip through the old per-block
    representation: snapshot() -> CacheBlock -> load_block() into a
    fresh store reproduces every column, for every slot the randomized
    stream populated.  This pins the column layout against the
    block-object layout the flat store replaced."""
    config = CacheConfig("T", size_bytes=4 * 64 * 2, ways=2, latency=10,
                         mshr_entries=4, replacement="lru")
    cache = Cache(config, NullMemory(),
                  policy=make_policy(policy_name, 4, 2),
                  track_recall=True)
    cycle = 0
    for line, kind, ip in accesses:
        cycle += 7
        cache.access(build_request(line, kind, ip, cycle))

    store = cache.store
    clone = CacheStore(store.num_sets, store.num_ways)
    for slot in range(store.size):
        block = store.snapshot(slot)
        # The detached copy matches the live view field-for-field.
        view = store.view(slot)
        for name in _BLOCK_FIELDS:
            assert getattr(block, name) == getattr(view, name), (slot, name)
        if store.valid[slot]:
            clone.load_block(slot, block)
            clone.slot_of[block.line_addr] = slot
    for slot in range(store.size):
        if not store.valid[slot]:
            continue
        for name in _BLOCK_FIELDS:
            assert getattr(clone.view(slot), name) == \
                getattr(store.view(slot), name), (slot, name)
    assert clone.slot_of == store.slot_of


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=31),
                              st.integers(min_value=0, max_value=500)),
                    min_size=1, max_size=300))
def test_recall_tracker_counts_are_consistent(ops):
    """samples == resolved evictions; histogram sums to samples."""
    tracker = RecallTracker("t")
    for is_evict, set_idx, line in ops:
        if is_evict:
            tracker.on_evict(set_idx % 4, line)
        else:
            tracker.on_access(set_idx % 4, line)
    tracker.flush()
    assert sum(tracker.histogram) == tracker.samples


@settings(max_examples=50, deadline=None)
@given(fills=st.lists(st.tuples(st.integers(min_value=0, max_value=15),
                                st.integers(min_value=1, max_value=300)),
                      min_size=1, max_size=100))
def test_mshr_admission_never_negative_and_bounded(fills):
    mshr = MSHR(4)
    now = 0
    for line, latency in fills:
        now += 5
        delay = mshr.admission_delay(now)
        assert delay >= 0
        start = now + delay
        mshr.allocate(line, start + latency, start)
    # Occupancy of pending demand entries never exceeds capacity by more
    # than the duplicate-line slack (same line re-allocated overwrites).
    assert mshr.occupancy(now) <= 16


@settings(max_examples=30, deadline=None)
@given(seq=st.lists(st.integers(min_value=0, max_value=1 << 40),
                    min_size=1, max_size=200))
def test_rrpv_bounds_hold(seq):
    """RRPVs stay within [0, max] for RRIP policies under arbitrary mixes."""
    pol = make_policy("ship", 8, 4)
    store = CacheStore(8, 4)
    pol.bind(store)
    for addr in seq:
        line = addr >> 6
        set_idx = line % 8
        req = MemoryRequest(address=addr, cycle=0, ip=addr & 0xFFFF)
        base = set_idx * 4
        way = next((w for w in range(4) if store.valid[base + w]
                    and store.line[base + w] == line), None)
        if way is not None:
            pol.on_hit(set_idx, way, req)
        else:
            slot = store.first_free(set_idx)
            if slot < 0:
                victim = pol.victim(set_idx, req)
                pol.on_evict(set_idx, victim)
                slot = base + victim
            else:
                victim = slot - base
            store.reset_slot(slot, line, 0)
            pol.on_fill(set_idx, victim, req)
        for w in range(4):
            assert 0 <= store.rrpv[base + w] <= pol.max_rrpv
