"""Tests for the optional instruction-side frontend (ITLB + L1I)."""

import numpy as np
import pytest

from repro.core.frontend import Frontend
from repro.core.ooo_core import OOOCore
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.trace import KIND_NONMEM, Trace


def build(model_frontend=True):
    cfg = default_config().with_(model_frontend=model_frontend)
    return MemoryHierarchy(cfg), cfg


def test_frontend_built_only_when_enabled():
    h, _ = build(model_frontend=False)
    assert h.frontend is None
    h2, _ = build(model_frontend=True)
    assert isinstance(h2.frontend, Frontend)


def test_cold_fetch_walks_then_hits():
    h, cfg = build()
    ip = 0x400000
    done1 = h.frontend.fetch(ip, cycle=0)
    assert h.frontend.itlb_walks == 1
    done2 = h.frontend.fetch(ip, cycle=10_000)
    # Warm fetch: ITLB hit + L1I hit.
    assert done2 - 10_000 == h.frontend.hidden_latency
    assert done2 - 10_000 < done1


def test_itlb_shares_stlb():
    h, _ = build()
    ip = 0x400000
    h.frontend.fetch(ip, cycle=0)
    # The code page's translation landed in the unified STLB.
    assert h.mmu.stlb.lookup(ip >> 12, count=False) is not None


def test_fetch_categorized_as_ifetch():
    h, _ = build()
    h.frontend.fetch(0x400000, cycle=0)
    assert h.frontend.l1i.stats.accesses["ifetch"] == 1


def test_core_with_frontend_runs_and_is_slower_when_code_misses():
    cfg_on = default_config().with_(model_frontend=True)
    cfg_off = default_config()
    n = 3000
    # A code footprint far beyond the scaled L1I: every line fetch misses.
    ips = (0x400000 + (np.arange(n, dtype=np.int64) * 64)
           % (1 << 22))
    trace = Trace(ips, np.full(n, KIND_NONMEM, dtype=np.int8),
                  np.zeros(n, dtype=np.int64))
    on = OOOCore(cfg_on, MemoryHierarchy(cfg_on)).run(trace)
    off = OOOCore(cfg_off, MemoryHierarchy(cfg_off)).run(trace)
    assert on.cycles > off.cycles


def test_small_code_footprint_barely_costs():
    """Once the loop body is resident in the L1I, fetch is pipeline-hidden
    (measured post-warmup to exclude the cold fills)."""
    cfg_on = default_config().with_(model_frontend=True)
    cfg_off = default_config()
    n = 6000
    ips = 0x400000 + (np.arange(n, dtype=np.int64) * 4) % 512
    trace = Trace(ips, np.full(n, KIND_NONMEM, dtype=np.int8),
                  np.zeros(n, dtype=np.int64))
    on = OOOCore(cfg_on, MemoryHierarchy(cfg_on)).run(trace, warmup=2000)
    off = OOOCore(cfg_off, MemoryHierarchy(cfg_off)).run(trace, warmup=2000)
    assert on.cycles <= off.cycles * 1.05


def test_reset_stats_covers_frontend():
    h, _ = build()
    h.frontend.fetch(0x400000, cycle=0)
    h.reset_stats()
    assert h.frontend.fetches == 0
    assert h.frontend.itlb.accesses == 0
