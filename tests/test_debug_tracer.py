"""Tests for the (deprecated) request-journey tracer shim.

``JourneyTracer`` is now a facade over :mod:`repro.obs.trace`; these
tests pin that the legacy surface -- wrapping, queries, rendering,
detach semantics -- survived the migration unchanged.
"""

import warnings

import pytest

from repro.debug import tracer as tracer_module
from repro.debug.tracer import JourneyTracer
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


@pytest.fixture()
def hierarchy():
    return MemoryHierarchy(default_config())


def test_warns_deprecation_once(hierarchy):
    tracer_module._warned = False
    with pytest.warns(DeprecationWarning, match="repro.obs.trace"):
        JourneyTracer(hierarchy)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second construction is silent
        JourneyTracer(hierarchy)


def test_traces_full_cold_journey(hierarchy):
    va = make_va([1, 2, 3, 4, 5])
    with JourneyTracer(hierarchy) as tracer:
        res = hierarchy.load(va, cycle=0)
    counts = tracer.by_component()
    # A cold load: 5 PTE reads + 1 data access at L1D, and the data
    # access descends to DRAM.
    assert counts["L1D"] == 6
    assert counts["DRAM"] >= 6  # every PTE read and the data miss
    data_events = tracer.events_for_line(res.paddr >> 6)
    assert any(e.component == "DRAM" for e in data_events)


def test_events_are_causal(hierarchy):
    with JourneyTracer(hierarchy) as tracer:
        hierarchy.load(make_va([1, 2, 3, 4, 5]), cycle=100)
    for e in tracer.events:
        assert e.completion >= e.arrival >= 100


def test_detach_restores_methods(hierarchy):
    original = hierarchy.l1d.access
    with JourneyTracer(hierarchy):
        assert hierarchy.l1d.access.__func__ is not original.__func__ \
            if hasattr(hierarchy.l1d.access, "__func__") else True
    assert hierarchy.l1d.access.__func__ is original.__func__


def test_render_and_clear(hierarchy):
    with JourneyTracer(hierarchy) as tracer:
        hierarchy.load(make_va([1, 2, 3, 4, 5]), cycle=0)
    text = tracer.render()
    assert "L1D" in text and "DRAM" in text
    assert len(tracer.render(limit=3).splitlines()) == 4  # header + 3
    tracer.clear()
    assert not tracer.events


def test_translation_events_categorized(hierarchy):
    with JourneyTracer(hierarchy) as tracer:
        hierarchy.load(make_va([1, 2, 3, 4, 5]), cycle=0)
    categories = {e.category for e in tracer.events}
    assert "translation" in categories
    assert "replay" in categories
