#!/usr/bin/env python3
"""Workload calibration report.

Prints, for every Table II benchmark: the measured STLB / L2C / LLC
MPKIs next to the paper's reference values, the trace-level working-set
statistics that drive them, and flags any benchmark that has drifted
out of its band.  Run after touching the workload generators.

Usage::

    python tools/calibrate.py [--instructions N] [--warmup N]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import run_benchmark
from repro.params import default_config
from repro.stats.report import format_table
from repro.workloads.analysis import summarize
from repro.workloads.registry import (TABLE2_REFERENCE, benchmark_names,
                                      categorize, make_trace)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--instructions", type=int, default=60_000)
    parser.add_argument("--warmup", type=int, default=15_000)
    args = parser.parse_args(argv)

    cfg = default_config()
    rows, ws_rows, drifted = [], [], []
    for name in benchmark_names():
        run = run_benchmark(name, instructions=args.instructions,
                            warmup=args.warmup)
        ref = TABLE2_REFERENCE[name]
        measured_cat = categorize(run.stlb_mpki)
        ref_cat = categorize(ref["stlb"])
        status = "ok" if measured_cat == ref_cat else "DRIFTED"
        if status != "ok":
            drifted.append(name)
        rows.append([name, run.stlb_mpki, ref["stlb"], measured_cat,
                     run.cache_mpki("l2c", "replay"),
                     run.cache_mpki("l2c", "non_replay"),
                     run.leaf_mpki("llc"), status])

        trace = make_trace(name, args.instructions)
        stats = summarize(trace, stlb_entries=cfg.stlb.entries)
        ws_rows.append([name, stats["loads_per_kilo"], stats["pages"],
                        stats["leaf_pte_lines"],
                        stats["stlb_reach_ratio"]])

    print(format_table(
        "Calibration vs Table II (reduced scale)",
        ["benchmark", "STLB", "STLB(ref)", "band", "L2C R", "L2C NR",
         "LLC PTL1", "status"], rows))
    print()
    print(format_table(
        "Trace working sets",
        ["benchmark", "loads/KI", "pages", "PTE lines", "reach ratio"],
        ws_rows))
    if drifted:
        print(f"\nDRIFTED: {', '.join(drifted)}")
        return 1
    print("\nAll benchmarks within their Table II bands.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
