#!/usr/bin/env python
"""End-to-end smoke test of the sweep service (`make serve-smoke`).

Boots the HTTP service on an ephemeral port against a throwaway store,
then drives it exactly the way a user would:

1. submit a tiny run over HTTP and wait on its event stream;
2. submit a scenario the same way;
3. resubmit the identical run and assert it is a *store hit* that
   executed nothing (the same-RunKey-executes-once acceptance check);
4. assert the run payload is bit-identical to a direct ``api.run``;
5. write the store manifest to ``service-artifacts/`` (CI uploads it).

Exits non-zero on any violated expectation.  Stdlib + repro only.
"""

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

INSTRUCTIONS = 20_000
WARMUP = 4_000
RUN_SPEC = {"kind": "run", "benchmark": "tc",
            "instructions": INSTRUCTIONS, "warmup": WARMUP}
SCENARIO_SPEC = {"kind": "scenario", "scenario": "SYN-01-STLB-THRASH",
                 "instructions": 6_000, "warmup": 1_000}


def main() -> int:
    import threading

    from repro import api
    from repro.service import JobStore, SweepService
    from repro.service.cli import request, wait_for_job
    from repro.service.http import build_server

    store_root = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    service = SweepService(store=JobStore(root=store_root), workers=2)
    httpd, runtime = build_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    url = f"http://{host}:{port}"
    print(f"serve-smoke: service on {url} (store {store_root})")

    failures = []

    def check(label, ok):
        print(f"serve-smoke: {'ok  ' if ok else 'FAIL'} {label}")
        if not ok:
            failures.append(label)

    try:
        # 1. tiny run over HTTP, wait on the event stream
        run1 = request(url, "/jobs", method="POST", body=RUN_SPEC)
        final1 = wait_for_job(url, run1["id"])
        check("run completes", final1["status"] == "done")
        check("run executed (not cached)", final1["source"] == "run")

        # 2. one scenario through the same path
        scen = request(url, "/jobs", method="POST", body=SCENARIO_SPEC)
        final_scen = wait_for_job(url, scen["id"])
        check("scenario completes", final_scen["status"] == "done")

        # 3. identical resubmission must be a store hit: same digest,
        #    nothing new executed.
        run2 = request(url, "/jobs", method="POST", body=RUN_SPEC)
        final2 = wait_for_job(url, run2["id"])
        check("resubmission completes", final2["status"] == "done")
        check("same RunKey, same digest",
              final2["digest"] == final1["digest"])
        check("resubmission is a store hit",
              final2["source"] == "store")
        health = request(url, "/health")
        check("exactly 2 executions (run + scenario)",
              health["metrics"]["executed"] == 2)
        check("store-hit counter advanced",
              health["metrics"]["store_hits"] == 1)

        # 4. the job payload is bit-identical to the direct API run
        payload = request(url, f"/jobs/{run1['id']}/result")
        direct = api.RunSummary.from_run(
            api.run("tc", instructions=INSTRUCTIONS, warmup=WARMUP),
            seed=1).to_dict()
        check("payload bit-identical to direct api.run",
              payload == direct)

        # 5. manifest artifact
        manifest = request(url, "/store")
        check("manifest lists both digests",
              sorted(manifest["digests"]) == sorted(
                  {final1["digest"], final_scen["digest"]}))
        artifacts = pathlib.Path("service-artifacts")
        artifacts.mkdir(exist_ok=True)
        out = artifacts / "store-manifest.json"
        out.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        print(f"serve-smoke: manifest -> {out}")
    finally:
        httpd.shutdown()
        httpd.server_close()
        runtime.stop()

    if failures:
        print(f"serve-smoke: {len(failures)} failure(s): "
              + ", ".join(failures))
        return 1
    print("serve-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
