#!/usr/bin/env python
"""End-to-end smoke test of the sweep service (`make serve-smoke`).

Boots the HTTP service on an ephemeral port against a throwaway store,
then drives it exactly the way a user would:

1. submit a tiny run over HTTP, scrape ``GET /metrics`` while it is in
   flight, and wait on its event stream;
2. submit a scenario the same way;
3. resubmit the identical run and assert it is a *store hit* that
   executed nothing (the same-RunKey-executes-once acceptance check);
4. assert the run payload is bit-identical to a direct ``api.run``;
5. assert the telemetry plane: the ``/health`` telemetry block
   validates against ``repro.obs/telemetry-v1``, ``/metrics`` parses as
   Prometheus text with the queue/latency/dedupe series, at least one
   ``job-progress`` event arrived on the run's stream, and the final
   progress row agrees with the stored ``RunSummary``;
6. write the store manifest and a telemetry snapshot to
   ``service-artifacts/`` (CI uploads them).

Exits non-zero on any violated expectation.  Stdlib + repro only.
"""

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

INSTRUCTIONS = 20_000
WARMUP = 4_000
RUN_SPEC = {"kind": "run", "benchmark": "tc",
            "instructions": INSTRUCTIONS, "warmup": WARMUP}
SCENARIO_SPEC = {"kind": "scenario", "scenario": "SYN-01-STLB-THRASH",
                 "instructions": 6_000, "warmup": 1_000}

REQUIRED_SERIES = ("repro_jobs_submitted_total",
                   "repro_jobs_executed_total",
                   "repro_store_hits_total", "repro_dedup_hits_total",
                   "repro_queue_depth", "repro_inflight_jobs",
                   "repro_job_wait_seconds_bucket",
                   "repro_job_run_seconds_count")


def parse_prometheus(text):
    """Parse exposition text; return {series name} or raise ValueError."""
    names = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, sep, value = line.rpartition(" ")
        if not sep:
            raise ValueError(f"unparseable line: {line!r}")
        float(value)  # must be numeric
        names.add(name_part.split("{", 1)[0])
    return names


def scrape_metrics(url):
    import urllib.request
    req = urllib.request.Request(url + "/metrics")
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.headers.get("Content-Type", ""), resp.read().decode()


def main() -> int:
    import threading

    from repro import api
    from repro.obs import validate_telemetry
    from repro.service import JobStore, SweepService
    from repro.service.cli import follow_events, request, wait_for_job
    from repro.service.http import build_server

    store_root = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    service = SweepService(store=JobStore(root=store_root), workers=2)
    httpd, runtime = build_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    url = f"http://{host}:{port}"
    print(f"serve-smoke: service on {url} (store {store_root})")

    failures = []

    def check(label, ok):
        print(f"serve-smoke: {'ok  ' if ok else 'FAIL'} {label}")
        if not ok:
            failures.append(label)

    try:
        # 1. tiny run over HTTP; scrape /metrics while it is in flight,
        #    then wait on the event stream
        run1 = request(url, "/jobs", method="POST", body=RUN_SPEC)
        mid_type, mid_text = scrape_metrics(url)
        check("/metrics mid-run is Prometheus text",
              mid_type.startswith("text/plain")
              and "version=0.0.4" in mid_type)
        try:
            mid_names = parse_prometheus(mid_text)
            check("/metrics mid-run parses", True)
        except ValueError as exc:
            mid_names = set()
            check(f"/metrics mid-run parses ({exc})", False)
        check("mid-run submissions counted",
              "repro_jobs_submitted_total 1" in mid_text.splitlines())
        final1 = wait_for_job(url, run1["id"])
        check("run completes", final1["status"] == "done")
        check("run executed (not cached)", final1["source"] == "run")

        # 2. one scenario through the same path
        scen = request(url, "/jobs", method="POST", body=SCENARIO_SPEC)
        final_scen = wait_for_job(url, scen["id"])
        check("scenario completes", final_scen["status"] == "done")

        # 3. identical resubmission must be a store hit: same digest,
        #    nothing new executed.
        run2 = request(url, "/jobs", method="POST", body=RUN_SPEC)
        final2 = wait_for_job(url, run2["id"])
        check("resubmission completes", final2["status"] == "done")
        check("same RunKey, same digest",
              final2["digest"] == final1["digest"])
        check("resubmission is a store hit",
              final2["source"] == "store")
        health = request(url, "/health")
        check("exactly 2 executions (run + scenario)",
              health["metrics"]["executed"] == 2)
        check("store-hit counter advanced",
              health["metrics"]["store_hits"] == 1)

        # 4. the job payload is bit-identical to the direct API run
        payload = request(url, f"/jobs/{run1['id']}/result")
        direct = api.RunSummary.from_run(
            api.run("tc", instructions=INSTRUCTIONS, warmup=WARMUP),
            seed=1).to_dict()
        check("payload bit-identical to direct api.run",
              payload == direct)

        # 5. the telemetry plane
        problems = validate_telemetry(health["telemetry"])
        check("health telemetry block validates (telemetry-v1)",
              problems == [],)
        if problems:
            for p in problems:
                print(f"serve-smoke:   telemetry problem: {p}")
        end_type, end_text = scrape_metrics(url)
        try:
            end_names = parse_prometheus(end_text)
            check("/metrics parses after the run", True)
        except ValueError as exc:
            end_names = set()
            check(f"/metrics parses after the run ({exc})", False)
        missing = [n for n in REQUIRED_SERIES if n not in end_names]
        check("queue/latency/dedupe series exposed"
              + (f" (missing {missing})" if missing else ""),
              not missing)

        events = list(follow_events(url, run1["id"]))
        progress = [e for e in events
                    if e.get("kind") == "job-progress"]
        check("at least one job-progress event arrived",
              len(progress) >= 1)
        if progress:
            last = progress[-1]
            check("final progress row matches stored RunSummary",
                  last.get("final") is True
                  and last.get("cycle") == payload["cycles"]
                  and last.get("ipc") == payload["metrics"]["ipc"]
                  and last.get("walk_cycles")
                  == payload["walk_cycles_total"])
        check("progress rows counted in gauges",
              health["gauges"]["progress_events"] >= len(progress))

        # 6. manifest + telemetry artifacts
        manifest = request(url, "/store")
        check("manifest lists both digests",
              sorted(manifest["digests"]) == sorted(
                  {final1["digest"], final_scen["digest"]}))
        artifacts = pathlib.Path("service-artifacts")
        artifacts.mkdir(exist_ok=True)
        out = artifacts / "store-manifest.json"
        out.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        tele_out = artifacts / "telemetry.json"
        tele_out.write_text(json.dumps(health["telemetry"], indent=2,
                                       sort_keys=True))
        (artifacts / "metrics.prom").write_text(end_text)
        print(f"serve-smoke: manifest -> {out}")
        print(f"serve-smoke: telemetry -> {tele_out}")
    finally:
        httpd.shutdown()
        httpd.server_close()
        runtime.stop()

    if failures:
        print(f"serve-smoke: {len(failures)} failure(s): "
              + ", ".join(failures))
        return 1
    print("serve-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
