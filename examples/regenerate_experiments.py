#!/usr/bin/env python3
"""Regenerate every figure/table and write EXPERIMENTS.md.

This is the full evaluation driver: it runs each experiment at a
moderate reduced-scale size, renders the regenerated tables, and records
the paper-vs-measured comparison.  Expect ~10-20 minutes.

Run with::

    python examples/regenerate_experiments.py [output.md]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import figures as F
from repro.experiments import mixes as M
from repro.experiments import sweeps as S
from repro.experiments.ablations import (atp_trigger_placement,
                                         single_mechanism_ablation)
from repro.experiments.accuracy import prefetch_accuracy
from repro.experiments.atp_scope import atp_scope
from repro.experiments.comparison import prior_work_comparison
from repro.experiments.extensions import huge_page_study
from repro.experiments.sweeps import psc_sensitivity

#: Moderate sizes: large enough to leave the compulsory-miss regime,
#: small enough to finish in minutes.
KW = dict(instructions=40_000, warmup=10_000)
KW_BIG = dict(instructions=100_000, warmup=20_000)
SWEEP_BENCH = ["xalancbmk", "canneal", "mcf", "cc", "pr"]

#: (section header, paper claim, callable) per experiment.
EXPERIMENTS = [
    ("Fig 1 — head-of-ROB stalls",
     "Replay loads stall the head of the ROB far longer (avg 191 / max "
     "226 cycles) than the walks themselves (avg 33 / max 54); "
     "non-replay loads average 47 cycles.",
     lambda: F.fig1_rob_stalls(**KW)),
    ("Fig 2 — ideal-cache opportunity",
     "Ideal LLC for translations+replays: +30.7%; adding ideal L2C: "
     "+37.6%. Translations alone at L2C: +4.7%; replays alone: +30.2%.",
     lambda: F.fig2_ideal(modes=["LLC(T)", "LLC(R)", "LLC(TR)",
                                 "L2C+LLC(TR)"], **KW)),
    ("Fig 3 — response levels",
     "Leaf translations: 23% L1D, 55.6% L2C, 15.1% LLC, 6.3% DRAM; "
     "more than 80% of replay loads miss the LLC.",
     lambda: F.fig3_response_distribution(**KW)),
    ("Fig 4 — translation MPKI by policy",
     "vs LRU: SRRIP -14.7%, DRRIP -27.5%, SHiP -33.3%, Hawkeye +44.1%.",
     lambda: F.fig4_translation_mpki(**KW)),
    ("Fig 5 — translation recall distance",
     "~30% of evicted translation blocks would be recalled within 50 "
     "unique set accesses.",
     lambda: F.fig5_recall_translations(**KW)),
    ("Fig 6 — replay MPKI by policy",
     "Replacement policy has no effect on replay MPKI.",
     lambda: F.fig6_replay_mpki(**KW)),
    ("Fig 7 — replay recall distance",
     "More than 60% of replay blocks have recall distance > 50.",
     lambda: F.fig7_recall_replays(**KW)),
    ("Fig 8 — prefetchers vs replay MPKI",
     "IPCP/SPP/Bingo barely move replay MPKI (<1% average); ISB helps "
     "some benchmarks.",
     lambda: F.fig8_prefetcher_replay_mpki(instructions=25_000,
                                           warmup=8_000)),
    ("Fig 10 — replay-at-RRPV0 misconfiguration",
     "Inserting replays at RRPV=0 alongside translations degrades "
     "performance.",
     lambda: F.fig10_replay_rrpv0_degradation(**KW)),
    ("Fig 12 — translation MPKI with enhancements",
     "New signatures cut LLC translation MPKI sharply; T-SHiP brings it "
     "near zero.",
     lambda: F.fig12_newsign_mpki(**KW_BIG)),
    ("Fig 14 — headline performance",
     "T-DRRIP +0.5% -> +T-SHiP +2.9% -> +ATP +4.8% -> +TEMPO +5.1% "
     "average; best case +10.6%.",
     lambda: F.fig14_performance(**KW)),
    ("Fig 15 — with data prefetchers",
     "On IPCP/Bingo/SPP/ISB baselines the enhancements gain 11.2%, "
     "7.5%, 6.4%, 7.2%.",
     lambda: F.fig15_with_prefetchers(benchmarks=SWEEP_BENCH,
                                      instructions=25_000, warmup=8_000)),
    ("Fig 16 — ROB-stall reduction",
     "STLB-miss stalls -28.76%, replay stalls -18.5% (46.7% combined "
     "ROB-stall reduction).",
     lambda: F.fig16_stall_reduction(**KW)),
    ("Fig 17 — 2-way SMT",
     "Average harmonic speedup 6.3%; pr-cc reaches 12.6% while "
     "xalancbmk-xalancbmk gains only 0.5%.",
     lambda: M.fig17_smt(instructions=20_000, warmup=5_000)),
    ("Fig 18 — STLB recall distance",
     "More than 40% of STLB entries are dead (recall distance > 50).",
     lambda: F.fig18_stlb_recall(**KW)),
    ("Fig 19 — STLB sensitivity",
     "Gains persist across STLB sizes; they shrink as the STLB grows.",
     lambda: S.fig19_stlb_sensitivity(benchmarks=SWEEP_BENCH,
                                      points=(1024, 2048, 4096),
                                      instructions=25_000, warmup=8_000)),
    ("Fig 20 — L2C sensitivity",
     "Gains hold from 256KB to 1MB L2C.",
     lambda: S.fig20_l2c_sensitivity(benchmarks=SWEEP_BENCH,
                                     instructions=25_000, warmup=8_000)),
    ("Fig 21 — LLC sensitivity",
     "6.3% at 1MB LLC falling to 4.2% at 8MB.",
     lambda: S.fig21_llc_sensitivity(benchmarks=SWEEP_BENCH,
                                     points=(1 << 20, 2 << 20, 8 << 20),
                                     instructions=25_000, warmup=8_000)),
    ("Table II — benchmark characterization",
     "Nine benchmarks spanning STLB MPKI 4.78 (xalancbmk) to 82.29 "
     "(pr); replay MPKI tracks STLB MPKI.",
     lambda: F.table2_characterization(**KW)),
    ("Section V multi-core",
     "8-core multiprogrammed mixes improve by more than 4% on average.",
     lambda: M.multicore_study(instructions=20_000, warmup=5_000)),
    ("Section V-B — prior works",
     "The proposal beats CbPred/DpPred by 3.1% on average; CSALT adds "
     "only ~1% on a strong baseline.",
     lambda: prior_work_comparison(**KW)),
    ("Ablation — single mechanisms (beyond the paper)",
     "(No paper counterpart.) Each mechanism in isolation.",
     lambda: single_mechanism_ablation(**KW)),
    ("Ablation — ATP trigger placement (beyond the paper)",
     "(No paper counterpart.) Where replay prefetches fire.",
     lambda: atp_trigger_placement(**KW)),
    ("Extension — huge pages (beyond the paper)",
     "(No paper counterpart.) THP as the orthogonal alternative.",
     lambda: huge_page_study(benchmarks=SWEEP_BENCH,
                             instructions=25_000, warmup=8_000)),
    ("Prefetch accuracy",
     "Section V: 'Our ATP prefetcher is 100% accurate as it is not "
     "speculative.'",
     lambda: prefetch_accuracy(benchmarks=SWEEP_BENCH,
                               instructions=25_000, warmup=8_000)),
    ("PSC sensitivity (beyond the paper)",
     "(No paper counterpart.) Page-walk latency vs paging-structure-"
     "cache capacity.",
     lambda: psc_sensitivity(benchmarks=SWEEP_BENCH,
                             instructions=25_000, warmup=8_000)),
    ("ATP scope (Fig 13 quantified)",
     "ATP hides the translation-response climb + load replay + request "
     "descent; the prefetched block is on its way before the replay "
     "demand reaches L2C/LLC.",
     lambda: atp_scope(benchmarks=SWEEP_BENCH,
                       instructions=25_000, warmup=8_000)),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Generated by `examples/regenerate_experiments.py` on the reduced-scale
configuration (`default_config()`, capacities of STLB/L2C/LLC divided by
16, synthetic Table II workloads; see DESIGN.md for the methodology and
substitutions).  Absolute numbers are not expected to match the paper's
10-billion-instruction ChampSim runs; the *shape* -- who wins, by
roughly what factor, where crossovers fall -- is the reproduction
target, and each claim below is also asserted by the corresponding
benchmark in `benchmarks/`.

"""


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    sections = [HEADER]
    t_start = time.time()
    for title, claim, fn in EXPERIMENTS:
        t0 = time.time()
        print(f"[{time.time() - t_start:7.1f}s] {title} ...", flush=True)
        result = fn()
        elapsed = time.time() - t0
        sections.append(f"## {title}\n\n"
                        f"**Paper:** {claim}\n\n"
                        f"**Measured** ({elapsed:.0f}s):\n\n"
                        f"```\n{result}\n```\n")
    with open(out_path, "w") as f:
        f.write("\n".join(sections))
    print(f"wrote {out_path} in {time.time() - t_start:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
