#!/usr/bin/env python3
"""Regenerate every figure/table and write EXPERIMENTS.md.

This is the full evaluation driver: it runs each experiment at a
moderate reduced-scale size, renders the regenerated tables, and records
the paper-vs-measured comparison.  Expect ~10-20 minutes.

Run with::

    python examples/regenerate_experiments.py [output.md]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import registry

#: Moderate sizes: large enough to leave the compulsory-miss regime,
#: small enough to finish in minutes.
KW = dict(instructions=40_000, warmup=10_000)
KW_BIG = dict(instructions=100_000, warmup=20_000)
SWEEP_BENCH = ["xalancbmk", "canneal", "mcf", "cc", "pr"]

#: (figure name, section header, paper claim, kwargs) per experiment.
#: Harnesses resolve through the figure registry -- the same source the
#: CLI and ``benchmarks/`` use -- and :func:`main` asserts the list
#: covers every registered figure, so this driver cannot drift.
EXPERIMENTS = [
    ("fig1", "Fig 1 — head-of-ROB stalls",
     "Replay loads stall the head of the ROB far longer (avg 191 / max "
     "226 cycles) than the walks themselves (avg 33 / max 54); "
     "non-replay loads average 47 cycles.", KW),
    ("fig2", "Fig 2 — ideal-cache opportunity",
     "Ideal LLC for translations+replays: +30.7%; adding ideal L2C: "
     "+37.6%. Translations alone at L2C: +4.7%; replays alone: +30.2%.",
     dict(modes=["LLC(T)", "LLC(R)", "LLC(TR)", "L2C+LLC(TR)"], **KW)),
    ("fig3", "Fig 3 — response levels",
     "Leaf translations: 23% L1D, 55.6% L2C, 15.1% LLC, 6.3% DRAM; "
     "more than 80% of replay loads miss the LLC.", KW),
    ("fig4", "Fig 4 — translation MPKI by policy",
     "vs LRU: SRRIP -14.7%, DRRIP -27.5%, SHiP -33.3%, Hawkeye +44.1%.",
     KW),
    ("fig5", "Fig 5 — translation recall distance",
     "~30% of evicted translation blocks would be recalled within 50 "
     "unique set accesses.", KW),
    ("fig6", "Fig 6 — replay MPKI by policy",
     "Replacement policy has no effect on replay MPKI.", KW),
    ("fig7", "Fig 7 — replay recall distance",
     "More than 60% of replay blocks have recall distance > 50.", KW),
    ("fig8", "Fig 8 — prefetchers vs replay MPKI",
     "IPCP/SPP/Bingo barely move replay MPKI (<1% average); ISB helps "
     "some benchmarks.", dict(instructions=25_000, warmup=8_000)),
    ("fig10", "Fig 10 — replay-at-RRPV0 misconfiguration",
     "Inserting replays at RRPV=0 alongside translations degrades "
     "performance.", KW),
    ("fig12", "Fig 12 — translation MPKI with enhancements",
     "New signatures cut LLC translation MPKI sharply; T-SHiP brings it "
     "near zero.", KW_BIG),
    ("fig14", "Fig 14 — headline performance",
     "T-DRRIP +0.5% -> +T-SHiP +2.9% -> +ATP +4.8% -> +TEMPO +5.1% "
     "average; best case +10.6%.", KW),
    ("fig15", "Fig 15 — with data prefetchers",
     "On IPCP/Bingo/SPP/ISB baselines the enhancements gain 11.2%, "
     "7.5%, 6.4%, 7.2%.",
     dict(benchmarks=SWEEP_BENCH, instructions=25_000, warmup=8_000)),
    ("fig16", "Fig 16 — ROB-stall reduction",
     "STLB-miss stalls -28.76%, replay stalls -18.5% (46.7% combined "
     "ROB-stall reduction).", KW),
    ("fig17", "Fig 17 — 2-way SMT",
     "Average harmonic speedup 6.3%; pr-cc reaches 12.6% while "
     "xalancbmk-xalancbmk gains only 0.5%.",
     dict(instructions=20_000, warmup=5_000)),
    ("fig18", "Fig 18 — STLB recall distance",
     "More than 40% of STLB entries are dead (recall distance > 50).",
     KW),
    ("fig19", "Fig 19 — STLB sensitivity",
     "Gains persist across STLB sizes; they shrink as the STLB grows.",
     dict(benchmarks=SWEEP_BENCH, points=(1024, 2048, 4096),
          instructions=25_000, warmup=8_000)),
    ("fig20", "Fig 20 — L2C sensitivity",
     "Gains hold from 256KB to 1MB L2C.",
     dict(benchmarks=SWEEP_BENCH, instructions=25_000, warmup=8_000)),
    ("fig21", "Fig 21 — LLC sensitivity",
     "6.3% at 1MB LLC falling to 4.2% at 8MB.",
     dict(benchmarks=SWEEP_BENCH, points=(1 << 20, 2 << 20, 8 << 20),
          instructions=25_000, warmup=8_000)),
    ("table2", "Table II — benchmark characterization",
     "Nine benchmarks spanning STLB MPKI 4.78 (xalancbmk) to 82.29 "
     "(pr); replay MPKI tracks STLB MPKI.", KW),
    ("multicore", "Section V multi-core",
     "8-core multiprogrammed mixes improve by more than 4% on average.",
     dict(instructions=20_000, warmup=5_000)),
    ("comparison", "Section V-B — prior works",
     "The proposal beats CbPred/DpPred by 3.1% on average; CSALT adds "
     "only ~1% on a strong baseline.", KW),
    ("ablation", "Ablation — single mechanisms (beyond the paper)",
     "(No paper counterpart.) Each mechanism in isolation.", KW),
    ("atp_placement",
     "Ablation — ATP trigger placement (beyond the paper)",
     "(No paper counterpart.) Where replay prefetches fire.", KW),
    ("hugepages", "Extension — huge pages (beyond the paper)",
     "(No paper counterpart.) THP as the orthogonal alternative.",
     dict(benchmarks=SWEEP_BENCH, instructions=25_000, warmup=8_000)),
    ("accuracy", "Prefetch accuracy",
     "Section V: 'Our ATP prefetcher is 100% accurate as it is not "
     "speculative.'",
     dict(benchmarks=SWEEP_BENCH, instructions=25_000, warmup=8_000)),
    ("psc", "PSC sensitivity (beyond the paper)",
     "(No paper counterpart.) Page-walk latency vs paging-structure-"
     "cache capacity.",
     dict(benchmarks=SWEEP_BENCH, instructions=25_000, warmup=8_000)),
    ("atp_scope", "ATP scope (Fig 13 quantified)",
     "ATP hides the translation-response climb + load replay + request "
     "descent; the prefetched block is on its way before the replay "
     "demand reaches L2C/LLC.",
     dict(benchmarks=SWEEP_BENCH, instructions=25_000, warmup=8_000)),
]

HEADER = """\
# EXPERIMENTS — paper vs. measured

Generated by `examples/regenerate_experiments.py` on the reduced-scale
configuration (`default_config()`, capacities of STLB/L2C/LLC divided by
16, synthetic Table II workloads; see DESIGN.md for the methodology and
substitutions).  Absolute numbers are not expected to match the paper's
10-billion-instruction ChampSim runs; the *shape* -- who wins, by
roughly what factor, where crossovers fall -- is the reproduction
target, and each claim below is also asserted by the corresponding
benchmark in `benchmarks/`.

"""


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    missing = set(registry.names()) - {name for name, *_ in EXPERIMENTS}
    assert not missing, f"EXPERIMENTS drifted from the registry: {missing}"
    sections = [HEADER]
    t_start = time.time()
    for name, title, claim, kwargs in EXPERIMENTS:
        t0 = time.time()
        print(f"[{time.time() - t_start:7.1f}s] {title} ...", flush=True)
        result = registry.get(name)(**kwargs)
        elapsed = time.time() - t0
        sections.append(f"## {title}\n\n"
                        f"**Paper:** {claim}\n\n"
                        f"**Measured** ({elapsed:.0f}s):\n\n"
                        f"```\n{result}\n```\n")
    with open(out_path, "w") as f:
        f.write("\n".join(sections))
    print(f"wrote {out_path} in {time.time() - t_start:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
