#!/usr/bin/env python3
"""How far from Belady? Offline-OPT analysis of translation caching.

Records the LLC access stream of a baseline run, replays it under
Belady's optimal policy, and compares each policy's leaf-translation
misses to the OPT lower bound.  Hawkeye (Fig 4) is *trained* to mimic
OPT, yet mispredicts translations -- this demo shows the gap the paper's
T-policies close.

Run with::

    python examples/opt_analysis_demo.py
"""

from repro.cache.opt import AccessRecorder
from repro.core.ooo_core import OOOCore
from repro.params import EnhancementConfig, default_config
from repro.stats.report import format_table
from repro.uncore.hierarchy import MemoryHierarchy
from repro.workloads.registry import make_trace

BENCHMARKS = ["canneal", "cc", "pr"]


def analyze(name, llc_policy="ship", enhancements=None, instructions=50_000):
    cfg = default_config()
    cfg.llc.replacement = llc_policy
    if enhancements:
        cfg = cfg.with_(enhancements=enhancements)
    hierarchy = MemoryHierarchy(cfg)
    recorder = AccessRecorder(hierarchy.llc).attach()
    trace = make_trace(name, instructions, seed=1)
    OOOCore(cfg, hierarchy).run(trace, warmup=instructions // 5)
    recorder.detach()
    opt = recorder.analyze()
    return hierarchy.llc.stats.misses["translation"], \
        opt.misses["translation"]


def main() -> None:
    rows = []
    for name in BENCHMARKS:
        ship_misses, opt_floor = analyze(name)
        tship_misses, _ = analyze(
            name, enhancements=EnhancementConfig(t_drrip=True, t_ship=True,
                                                 newsign=True))
        rows.append([name, ship_misses, tship_misses, opt_floor])
    print(format_table(
        "LLC translation misses: policies vs the Belady-OPT floor",
        ["benchmark", "SHiP", "T-SHiP", "OPT (offline)"], rows))
    print()
    print("OPT replays the exact same LLC access stream with perfect")
    print("future knowledge -- no online policy can miss less.  T-SHiP")
    print("closes most of the gap between SHiP and that floor for")
    print("translation blocks, which is precisely the paper's Fig 12.")


if __name__ == "__main__":
    main()
