#!/usr/bin/env python3
"""Anatomy of an STLB miss: trace one load's journey, span by span.

Uses the request span tracer to show exactly what the paper's Fig 1
costs are made of: five dependent PTE reads walking the radix page
table (each probing L1D -> L2C -> LLC -> DRAM), then the replay data
access missing the whole hierarchy -- rendered as a nested span tree.

Run with::

    python examples/request_journey_demo.py
"""

from repro.obs.trace import SpanTracer, attach, detach, render_trace
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


def traced_load(hierarchy, va: int, cycle: int):
    tracer = SpanTracer()
    attach(hierarchy, tracer)
    try:
        res = hierarchy.load(va, cycle=cycle, ip=0x401000)
    finally:
        detach(hierarchy)
    doc = {"spans": [s.to_dict() for s in tracer.iter_spans()]}
    return res, doc


def main() -> None:
    hierarchy = MemoryHierarchy(default_config())
    va = make_va([3, 1, 4, 1, 5], 0x9A8)

    print("Cold load (nothing cached, five-level walk + replay):\n")
    res, doc = traced_load(hierarchy, va, cycle=0)
    print(render_trace(doc))
    print()
    print(f"translation done at cycle {res.translation_done}, "
          f"data at {res.data_done} "
          f"(replay: {res.is_replay}, served by {res.data_served_by})\n")

    print("Same page, warm TLBs (one L1D hit, no walk):\n")
    res, doc = traced_load(hierarchy, va + 8, cycle=10_000)
    print(render_trace(doc))
    print()
    print(f"data done {res.data_done - 10_000} cycles after issue "
          f"(replay: {res.is_replay})")


if __name__ == "__main__":
    main()
