#!/usr/bin/env python3
"""Anatomy of an STLB miss: trace one load's journey, event by event.

Uses the JourneyTracer to show exactly what the paper's Fig 1 costs are
made of: five dependent PTE reads walking the radix page table, then the
replay data access missing the whole hierarchy.

Run with::

    python examples/request_journey_demo.py
"""

from repro.debug.tracer import JourneyTracer
from repro.params import default_config
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


def main() -> None:
    hierarchy = MemoryHierarchy(default_config())
    va = make_va([3, 1, 4, 1, 5], 0x9A8)

    print("Cold load (nothing cached, five-level walk + replay):\n")
    with JourneyTracer(hierarchy) as tracer:
        res = hierarchy.load(va, cycle=0, ip=0x401000)
    print(tracer.render())
    print()
    print(f"translation done at cycle {res.translation_done}, "
          f"data at {res.data_done} "
          f"(replay: {res.is_replay}, served by {res.data_served_by})\n")

    print("Same page, warm TLBs (one L1D hit, no walk):\n")
    with JourneyTracer(hierarchy) as tracer:
        res = hierarchy.load(va + 8, cycle=10_000, ip=0x401000)
    print(tracer.render())
    print()
    print(f"data done {res.data_done - 10_000} cycles after issue "
          f"(replay: {res.is_replay})")


if __name__ == "__main__":
    main()
