#!/usr/bin/env python3
"""SMT and multi-core evaluation (paper Section V, Fig 17).

Runs a 2-way SMT mix and a 4-core multiprogrammed mix with and without
the paper's enhancements and reports harmonic speedups.

Run with::

    python examples/smt_and_multicore.py
"""

from repro import MultiCore, SMTCore, default_config, make_trace
from repro.params import EnhancementConfig
from repro.stats.report import harmonic_mean
from repro.uncore.hierarchy import MemoryHierarchy


def run_smt(mix, config, instructions, warmup):
    traces = [make_trace(name, instructions + warmup, seed=7 + i)
              for i, name in enumerate(mix)]
    smt = SMTCore(config, MemoryHierarchy(config))
    return smt.run(traces, warmup=warmup)


def run_multicore(mix, config, instructions, warmup):
    traces = [make_trace(name, instructions + warmup, seed=11 + i)
              for i, name in enumerate(mix)]
    machine = MultiCore(config, len(mix))
    return machine.run(traces, warmup=warmup)


def compare(label, runner, mix, instructions=18_000, warmup=4_500):
    base_cfg = default_config()
    enh_cfg = base_cfg.with_(enhancements=EnhancementConfig.full())
    base = runner(mix, base_cfg, instructions, warmup)
    enh = runner(mix, enh_cfg, instructions, warmup)
    per_thread = [b.cycles / e.cycles for b, e in zip(base, enh)]
    print(f"{label}: {'-'.join(mix)}")
    for name, sp in zip(mix, per_thread):
        print(f"    {name:<10} speedup {sp:.3f}x")
    hsp = harmonic_mean(per_thread)
    print(f"    harmonic speedup: {hsp:.3f}x\n")
    return hsp


def main() -> None:
    print("Enhancements under shared memory hierarchies "
          "(reduced scale):\n")
    compare("2-way SMT (High-High mix)", run_smt, ("pr", "cc"))
    compare("2-way SMT (High-Medium mix)", run_smt, ("radii", "canneal"))
    compare("4-core multiprogrammed", run_multicore,
            ("mcf", "tc", "bf", "xalancbmk"))
    print("Shared-hierarchy results are noisier than single-core ones at")
    print("reduced scale (co-runner interleavings shift with any timing")
    print("change); the multi-mix study in benchmarks/test_multicore.py")
    print("and benchmarks/test_fig17_smt.py aggregates over mixes, where")
    print("the paper's >4% (multi-core) and ~6% (SMT) gains reproduce.")


if __name__ == "__main__":
    main()
