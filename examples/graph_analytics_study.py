#!/usr/bin/env python3
"""Graph-analytics case study: why address translation dominates.

This walks the paper's motivation (Sections I and III) on the Ligra-style
graph kernels: their gather-heavy address streams miss the STLB
constantly, each miss walks the five-level page table, and the *replay*
data access then misses the whole cache hierarchy.

Run with::

    python examples/graph_analytics_study.py
"""

from repro import api
from repro.stats.report import format_table

GRAPH_KERNELS = ["tc", "mis", "bf", "radii", "cc", "pr"]


def main() -> None:
    instructions, warmup = 30_000, 8_000
    rows = []
    for name in GRAPH_KERNELS:
        run = api.run(name, instructions=instructions, warmup=warmup)
        dist = run.hierarchy.response_distribution.fractions("translation")
        total_stalls = run.core.stalls.total_stall_cycles()
        tr_stalls = run.translation_replay_stalls()
        rows.append([
            name,
            run.stlb_mpki,
            run.cache_mpki("llc", "replay"),
            dist["L2C"] + dist["L1D"],          # translations served early
            dist["DRAM"],                        # translations from DRAM
            tr_stalls / max(1, total_stalls),    # stall share
            run.ipc,
        ])

    print(format_table(
        "Ligra graph kernels: translation pressure (reduced scale)",
        ["kernel", "STLB MPKI", "LLC replay MPKI", "PTE @ L1D/L2C",
         "PTE @ DRAM", "T+R stall share", "IPC"],
        rows))
    print()
    print("Reading the table: every kernel's replay MPKI tracks its STLB")
    print("MPKI (each page-table walk is followed by a data access that")
    print("misses the hierarchy), and translation+replay stalls account")
    print("for most head-of-ROB stall cycles -- the paper's motivation")
    print("for translation-conscious cache management.")


if __name__ == "__main__":
    main()
