#!/usr/bin/env python3
"""ATP in action: watch a translation hit trigger a replay prefetch.

Builds a two-level hierarchy by hand, walks a page table through it and
shows the timeline of Fig 13: without ATP the replay load pays a full
DRAM round trip after the walk; with ATP the data is already in flight
when the replay demand arrives.

Run with::

    python examples/atp_prefetcher_demo.py
"""

from repro import default_config
from repro.params import EnhancementConfig
from repro.uncore.hierarchy import MemoryHierarchy
from repro.vm.address import make_va


def replay_timeline(enable_atp: bool) -> None:
    enh = EnhancementConfig(t_drrip=True, t_ship=True, newsign=True,
                            atp=enable_atp)
    cfg = default_config().with_(enhancements=enh)
    hierarchy = MemoryHierarchy(cfg)

    # Touch a set of pages so their leaf PTEs are resident at the L2C
    # (this is what T-DRRIP's RRPV=0 insertion guarantees), then evict
    # the *data* from the TLBs and caches by pure passage of time.
    base = make_va([3, 1, 4, 1, 0])
    cycle = 0
    for i in range(64):
        hierarchy.load(base + i * 4096, cycle)
        cycle += 2000
    # Thrash the TLBs so the next access walks again.
    hierarchy.mmu.dtlb.invalidate_all()
    hierarchy.mmu.stlb.invalidate_all()

    target = base + 7 * 4096 + 0x400
    res = hierarchy.load(target, cycle)
    label = "with ATP" if enable_atp else "without ATP"
    print(f"  {label}:")
    print(f"    walk completes at cycle {res.translation_done - cycle:>5} "
          f"(relative)")
    print(f"    data ready at cycle     {res.data_done - cycle:>5}")
    print(f"    replay data latency     "
          f"{res.data_done - res.translation_done:>5} cycles "
          f"(served by {res.data_served_by})")
    if hierarchy.atp is not None:
        print(f"    ATP prefetches fired:   {hierarchy.atp.triggered:>5}")
    print()


def main() -> None:
    print("Replay-load timeline for an STLB-missing access whose leaf PTE")
    print("hits on-chip (the ATP trigger condition):\n")
    replay_timeline(enable_atp=False)
    replay_timeline(enable_atp=True)
    print("ATP launches the replay line's DRAM fetch the moment the leaf")
    print("PTE hits at the L2C/LLC, so the demand that arrives after the")
    print("TLB fill and pipeline replay merges with an in-flight fill")
    print("instead of starting a fresh DRAM round trip (paper Fig 13).")


if __name__ == "__main__":
    main()
