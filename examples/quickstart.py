#!/usr/bin/env python3
"""Quickstart: simulate one benchmark with and without the paper's
translation-conscious enhancements.

Run with::

    python examples/quickstart.py [benchmark]

The default benchmark is ``pr`` (PageRank), the most STLB-intensive
workload in the paper's Table II.
"""

import sys

from repro import api
from repro.api import StallCategory


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "pr"
    instructions, warmup = 40_000, 10_000

    print(f"Simulating '{name}' ({instructions:,} instructions after "
          f"{warmup:,} warmup) at reduced scale...\n")

    baseline = api.run(name, instructions=instructions, warmup=warmup)
    enhanced = api.run(name, enhancements="full",
                       instructions=instructions, warmup=warmup)

    def describe(label, run):
        print(f"{label}:")
        print(f"  IPC                      {run.ipc:8.3f}")
        print(f"  STLB MPKI                {run.stlb_mpki:8.2f}")
        print(f"  LLC replay MPKI          {run.cache_mpki('llc', 'replay'):8.2f}")
        print(f"  LLC leaf-PTE MPKI        {run.leaf_mpki('llc'):8.3f}")
        print(f"  ROB stalls (translation) "
              f"{run.stall_cycles(StallCategory.TRANSLATION):8d}")
        print(f"  ROB stalls (replay)      "
              f"{run.stall_cycles(StallCategory.REPLAY):8d}")
        print()

    describe("Baseline (DRRIP @ L2C, SHiP @ LLC)", baseline)
    describe("T-DRRIP + T-SHiP + ATP + TEMPO", enhanced)

    speedup = enhanced.speedup_over(baseline)
    hit_rate = enhanced.hierarchy.leaf_translation_hit_rate()
    print(f"Speedup: {speedup:.3f}x "
          f"({(speedup - 1) * 100:+.1f}% execution time)")
    print(f"Leaf translations served on-chip: {hit_rate:.1%}")
    if enhanced.hierarchy.atp is not None:
        print(f"ATP prefetches triggered: "
              f"{enhanced.hierarchy.atp.triggered}")


if __name__ == "__main__":
    main()
