#!/usr/bin/env python3
"""Terminal dashboard: the headline results as ASCII bar charts.

Run with::

    python examples/results_dashboard.py
"""

from repro import api
from repro.stats.report import bar_chart


def main() -> None:
    kw = dict(instructions=30_000, warmup=8_000)

    fig14 = api.figure("fig14", **kw)
    labels = [row[0] for row in fig14.rows]
    final = [row[-1] for row in fig14.rows]  # +TEMPO column
    print(bar_chart("Fig 14 endpoint: full-stack speedup over baseline "
                    "(bars show delta over 1.0)",
                    labels, final, baseline=1.0))
    print()

    fig16 = api.figure("fig16", **kw)
    labels = [row[0] for row in fig16.rows]
    combined = [row[3] for row in fig16.rows]
    print(bar_chart("Fig 16: reduction in translation+replay ROB stalls "
                    "(fraction)", labels, combined))
    print()
    print("Regenerate every figure with "
          "`python examples/regenerate_experiments.py`.")


if __name__ == "__main__":
    main()
