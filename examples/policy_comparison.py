#!/usr/bin/env python3
"""Replacement-policy shoot-out for translation blocks (Figs 4, 6, 12).

Compares how LRU, SRRIP, DRRIP, SHiP and Hawkeye treat leaf-level
address-translation blocks at the LLC, then shows what the paper's
NewSign signatures and T-SHiP insertion do to the same metric.

Run with::

    python examples/policy_comparison.py
"""

from repro import api
from repro.api import EnhancementConfig
from repro.stats.report import format_table

BENCHMARKS = ["canneal", "mcf", "cc", "pr"]
POLICIES = ["lru", "srrip", "drrip", "ship", "hawkeye"]


def llc_policy_run(name, policy, **kw):
    cfg = api.build_config()
    cfg.llc.replacement = policy
    return api.run(name, config=cfg, **kw)


def main() -> None:
    kw = dict(instructions=60_000, warmup=15_000)

    rows = []
    for name in BENCHMARKS:
        row = [name]
        for policy in POLICIES:
            run = llc_policy_run(name, policy, **kw)
            row.append(run.leaf_mpki("llc"))
        rows.append(row)
    print(format_table("Leaf-translation MPKI at LLC by policy (Fig 4)",
                       ["benchmark"] + POLICIES, rows))
    print()

    variants = {
        "SHiP": EnhancementConfig.none(),
        "NewSign": EnhancementConfig(newsign=True),
        "T-SHiP": EnhancementConfig(t_drrip=True, t_ship=True,
                                    newsign=True),
    }
    rows = []
    for name in BENCHMARKS:
        row = [name]
        for enh in variants.values():
            run = api.run(name, enhancements=enh, **kw)
            row.append(run.leaf_mpki("llc"))
        rows.append(row)
    print(format_table(
        "...and with the paper's enhancements (Fig 12)",
        ["benchmark"] + list(variants), rows))
    print()
    print("The translation-aware signatures de-noise SHiP's training and")
    print("RRPV=0 insertion pins leaf PTEs; together they cut the")
    print("translation MPKI to near zero, as in the paper's Fig 12.")


if __name__ == "__main__":
    main()
